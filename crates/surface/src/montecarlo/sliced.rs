//! Bit-sliced SIMD-within-a-register Monte-Carlo kernel: 64 trials per
//! `u64` word operation.
//!
//! The packed kernel of [`super`] processes one trial at a time — its
//! bitsets put data qubit `q` at bit `q` of a per-trial word array. This
//! module transposes that layout: a **64-trial block** stores one word
//! per data qubit, and bit `l` of word `q` is qubit `q`'s error flag in
//! *lane* `l`. Error placement, Z-syndrome extraction (2–4 word XORs per
//! check), the zero-syndrome early exit (one OR-fold), and the
//! logical-membrane parity check all run for 64 independent trials per
//! word op. Only lanes whose syndrome is nonzero fall back to the scalar
//! packed decoder, one gathered lane at a time — at `p = 10⁻³` that is a
//! few percent of trials, so the per-trial cost collapses to the
//! word-wide sampling and extraction.
//!
//! Two further fast paths carry the speedup without disturbing a single
//! random draw or verdict:
//!
//! * **fast-empty sampling** — a lane with no error resolves its one
//!   geometric draw against a precomputed threshold
//!   ([`qisim_quantum::rng::Geometric::positions_fast_empty`]), so the
//!   ~`(1−p)ⁿ` majority of lanes never pays a logarithm;
//! * **a decoder-verdict memo** — the scalar decoder is a pure function
//!   of the syndrome, so each fallback lane first looks its gathered
//!   syndrome up in a hash memo of the correction's logical parity
//!   (`failure ⟺ parity(error) ⊕ parity(correction)`, and the error
//!   parity is already word-wide in the logical-lane mask). Low-weight
//!   syndromes dominate at small `p`, so warm lanes skip the decode and
//!   even the error-lane gather entirely.
//!
//! # Reference equivalence
//!
//! Global trial `t` always samples from `Xorshift64Star::stream(seed, t)`
//! through the same [`qisim_quantum::rng::Geometric::positions`] walk
//! the scalar kernels
//! use, so the sliced failure count **exactly equals** 64 independent
//! [`super::run_trials_reference`] runs fed the same per-lane streams —
//! the equivalence suite and `bench_mc --smoke` pin this on the
//! acceptance grid. The lane→stream map depends only on `(seed, t)`,
//! never on the thread count, so [`logical_error_rate_sliced`] and
//! [`logical_error_rate_sliced_par`] are bit-identical to each other at
//! any parallelism.

use super::{flush_obs, ErrorSampler, McEstimate, McStats};
use crate::decoder::{decode_into, DecodeStats, DecoderScratch, DecodingGraph};
use crate::lattice::{Lattice, PackedLattice};
use qisim_quantum::rng::{open01_from_mantissa53, Rng, Xorshift64Star};

/// Slot count of the direct-mapped decoder-verdict cache (a power of
/// two; the hash's low bits index it). Low-weight syndromes dominate at
/// supremacy-regime `p`, so the working set is far smaller than this; at
/// depolarizing-strength `p` syndromes rarely repeat and conflict
/// evictions just degrade gracefully to decoding every fallback lane.
const MEMO_SLOTS: usize = 1 << 12;

/// Multiply-xor mix of packed syndrome words into a cache slot index
/// (SplitMix64-style finalizer). A slot conflict only costs a full-key
/// mismatch and a re-decode — never a wrong verdict.
#[inline]
fn syndrome_slot(syndrome: &[u64]) -> usize {
    let mut z = 0u64;
    for &word in syndrome {
        z = (z ^ word).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize & (MEMO_SLOTS - 1)
}

/// Per-call accounting of the sliced kernel, flushed to the `qisim-obs`
/// registry as the `surface.sliced.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlicedStats {
    /// 64-trial lane words (blocks) processed.
    pub words: u64,
    /// Lanes where no error was sampled at all.
    pub empty_lanes: u64,
    /// Lanes with errors but an all-zero syndrome: decode skipped, only
    /// the word-wide logical parity check ran.
    pub zero_syndrome_lanes: u64,
    /// Lanes gathered back to the packed layout and sent through the
    /// scalar decoder (the fallback path).
    pub fallback_trials: u64,
    /// Fallback lanes resolved by replaying the decoder's memoized
    /// verdict for their syndrome instead of re-decoding.
    pub memo_hits: u64,
}

impl SlicedStats {
    fn merge(&mut self, other: SlicedStats) {
        self.words += other.words;
        self.empty_lanes += other.empty_lanes;
        self.zero_syndrome_lanes += other.zero_syndrome_lanes;
        self.fallback_trials += other.fallback_trials;
        self.memo_hits += other.memo_hits;
    }
}

/// Reusable buffers of the sliced kernel: the transposed error/syndrome
/// blocks plus one packed trial's worth of scratch for the fallback
/// decoder. One allocation per batch (or parallel chunk), zero per trial.
#[derive(Debug, Clone)]
pub struct SlicedScratch {
    /// Transposed errors: one word per data qubit.
    sliced_errs: Vec<u64>,
    /// Transposed syndromes: one word per Z-check.
    sliced_syn: Vec<u64>,
    /// One gathered lane in the packed per-trial layout.
    packed_errs: Vec<u64>,
    /// One gathered lane's syndrome in the packed layout.
    syndrome: Vec<u64>,
    /// Scalar decoder arena for the fallback lanes.
    decoder: DecoderScratch,
    /// Direct-mapped decoder-verdict cache, [`MEMO_SLOTS`] slots of
    /// `syndrome_words` keys each: packed syndrome → logical parity of
    /// the correction [`decode_into`] returns for it. The decoder is a
    /// pure function of the syndrome, so a repeat syndrome replays its
    /// verdict — `outcome(lane) = parity(error) ⊕ memo[syndrome]` — with
    /// no gather of the error lane and no decode. Conflicts overwrite;
    /// the cache persists across batches.
    memo_keys: Vec<u64>,
    /// Slot-validity bitset of the verdict cache.
    memo_valid: Vec<u64>,
    /// Slot-verdict bitset (logical parity of the slot's correction).
    memo_verdict: Vec<u64>,
    stats: SlicedStats,
}

impl SlicedScratch {
    /// Allocates scratch sized for `packed` and `graph`.
    pub fn new(packed: &PackedLattice, graph: &DecodingGraph) -> Self {
        SlicedScratch {
            sliced_errs: vec![0; packed.sliced_words()],
            sliced_syn: vec![0; packed.sliced_syndrome_words()],
            packed_errs: vec![0; packed.qubit_words()],
            syndrome: vec![0; graph.syndrome_words()],
            decoder: DecoderScratch::new(graph),
            memo_keys: vec![0; MEMO_SLOTS * graph.syndrome_words()],
            memo_valid: vec![0; MEMO_SLOTS / 64],
            memo_verdict: vec![0; MEMO_SLOTS / 64],
            stats: SlicedStats::default(),
        }
    }

    /// Sliced-path counters accumulated since construction (or the last
    /// [`Self::take_stats`]).
    pub fn stats(&self) -> SlicedStats {
        self.stats
    }

    /// Returns and resets the accumulated counters (decoder work
    /// counters travel separately via the inner arena).
    pub fn take_stats(&mut self) -> (SlicedStats, DecodeStats) {
        (std::mem::take(&mut self.stats), self.decoder.take_stats())
    }
}

/// The bit-sliced sample-extract-check kernel: returns the number of
/// logical failures in `trials` rounds, where global trial `first_trial
/// + i` samples from `Xorshift64Star::stream(seed, first_trial + i)`.
///
/// Public so benches and the equivalence suite can drive it directly
/// against 64 per-lane reference runs.
pub fn run_trials_sliced(
    packed: &PackedLattice,
    graph: &DecodingGraph,
    p: f64,
    trials: usize,
    seed: u64,
    first_trial: usize,
    scratch: &mut SlicedScratch,
) -> usize {
    let n = packed.data_qubits();
    let sampler = ErrorSampler::new(p);
    // One integer comparison on the raw mantissa decides "no error
    // anywhere in this lane" without even a float conversion — the
    // overwhelming case at supremacy-regime p. Gray-zone and error-
    // bearing draws go down the exact walk, draw for draw.
    let (empty_gate, empty_threshold) = match &sampler {
        ErrorSampler::Skip(geo) => (geo.empty_run_gate(n), geo.empty_run_threshold(n)),
        _ => (0, 0.0),
    };
    let mut failures = 0usize;
    let mut start = 0usize;
    while start < trials {
        let active = 64.min(trials - start);
        let active_mask = if active == 64 { !0u64 } else { (1u64 << active) - 1 };
        scratch.stats.words += 1;
        scratch.sliced_errs.fill(0);
        // Sample errors lane by lane, straight into the transposed
        // layout: lane l of word q is qubit q in trial start + l.
        let mut any_err_mask = 0u64;
        let base = (first_trial + start) as u64;
        if let ErrorSampler::Skip(geo) = &sampler {
            // Pass 1: one raw draw per lane against the integer gate —
            // a branchless screen that retires ~(1−p)ⁿ of the lanes.
            let mut live = 0u64;
            let mut first = [0u64; 64];
            for (l, m) in first.iter_mut().take(active).enumerate() {
                *m = Xorshift64Star::stream(seed, base.wrapping_add(l as u64)).gen_mantissa53();
                live |= ((*m < empty_gate) as u64) << l;
            }
            // Pass 2: walk only the lanes whose draw missed the gate,
            // resuming each lane's stream past its consumed first draw.
            while live != 0 {
                let l = live.trailing_zeros() as usize;
                live &= live - 1;
                let mut rng = Xorshift64Star::stream(seed, base.wrapping_add(l as u64));
                let _ = rng.next_u64(); // pass 1 consumed this draw
                let bit = 1u64 << l;
                let errs = &mut scratch.sliced_errs;
                let u = open01_from_mantissa53(first[l]);
                if geo.positions_from_first(n, u, empty_threshold, &mut rng, |q| errs[q] |= bit) {
                    any_err_mask |= bit;
                }
            }
        } else {
            // Degenerate p = 0 / p = 1: no draws, no gate.
            let mut lanes = Xorshift64Star::streams64(seed, base);
            for (l, rng) in lanes.iter_mut().take(active).enumerate() {
                let bit = 1u64 << l;
                let errs = &mut scratch.sliced_errs;
                if sampler.sample(n, rng, |q| errs[q] |= bit) {
                    any_err_mask |= bit;
                }
            }
        }
        scratch.stats.empty_lanes += (active_mask & !any_err_mask).count_ones() as u64;
        if any_err_mask == 0 {
            // Fast path 1, word-wide: no lane flipped anything.
            start += active;
            continue;
        }
        // Word-wide syndrome extraction + logical parity for all lanes.
        let any_syn_mask = packed.z_syndrome_sliced(&scratch.sliced_errs, &mut scratch.sliced_syn);
        let logical_mask = packed.logical_x_lanes(&scratch.sliced_errs);
        // Fast path 2, word-wide: lanes with errors but zero syndrome
        // need only the logical-membrane parity bit.
        let zero_syn = any_err_mask & !any_syn_mask;
        scratch.stats.zero_syndrome_lanes += zero_syn.count_ones() as u64;
        failures += (zero_syn & logical_mask).count_ones() as usize;
        // Fallback: gather each nonzero-syndrome lane's syndrome and
        // either replay the decoder's cached verdict for it or run the
        // scalar decoder on the gathered lane (and cache the verdict).
        let words = scratch.syndrome.len();
        let mut fallback = any_syn_mask;
        while fallback != 0 {
            let lane = fallback.trailing_zeros() as usize;
            fallback &= fallback - 1;
            scratch.stats.fallback_trials += 1;
            packed.gather_syndrome_lane(&scratch.sliced_syn, lane, &mut scratch.syndrome);
            let err_parity = logical_mask >> lane & 1 == 1;
            // The decoder is a pure function of the syndrome, so the
            // logical parity of its correction replays from the cache:
            // failure ⟺ parity(error) ⊕ parity(correction).
            let slot = syndrome_slot(&scratch.syndrome);
            let key = &scratch.memo_keys[slot * words..(slot + 1) * words];
            if scratch.memo_valid[slot >> 6] >> (slot & 63) & 1 == 1 && key == &*scratch.syndrome {
                scratch.stats.memo_hits += 1;
                let corr_parity = scratch.memo_verdict[slot >> 6] >> (slot & 63) & 1 == 1;
                failures += (err_parity ^ corr_parity) as usize;
                continue;
            }
            // Claim the slot before decoding: the debug residual check
            // below overwrites `scratch.syndrome` in debug builds.
            scratch.memo_keys[slot * words..(slot + 1) * words].copy_from_slice(&scratch.syndrome);
            packed.gather_lane(&scratch.sliced_errs, lane, &mut scratch.packed_errs);
            for &q in decode_into(graph, &scratch.syndrome, &mut scratch.decoder) {
                PackedLattice::flip_bit(&mut scratch.packed_errs, q);
            }
            debug_assert!(
                !packed.z_syndrome_into(&scratch.packed_errs, &mut scratch.syndrome),
                "decoder left residual syndrome"
            );
            let failed = packed.is_logical_x(&scratch.packed_errs);
            failures += failed as usize;
            scratch.memo_valid[slot >> 6] |= 1 << (slot & 63);
            let verdict_bit = 1u64 << (slot & 63);
            if failed ^ err_parity {
                scratch.memo_verdict[slot >> 6] |= verdict_bit;
            } else {
                scratch.memo_verdict[slot >> 6] &= !verdict_bit;
            }
        }
        start += active;
    }
    failures
}

/// Flushes sliced-kernel counters to the `qisim-obs` registry.
fn flush_sliced_obs(trials: usize, failures: usize, stats: SlicedStats, dec: DecodeStats) {
    qisim_obs::counter!("surface.sliced.trials", trials as u64);
    qisim_obs::counter!("surface.sliced.words", stats.words);
    qisim_obs::counter!("surface.sliced.fallback_trials", stats.fallback_trials);
    qisim_obs::counter!("surface.sliced.memo_hits", stats.memo_hits);
    // The shared Monte-Carlo / decoder series keep their meaning: the
    // sliced fast paths partition trials exactly like the packed ones.
    flush_obs(
        failures,
        McStats {
            empty_trials: stats.empty_lanes,
            zero_syndrome_trials: stats.zero_syndrome_lanes,
            decoded_trials: stats.fallback_trials,
        },
        dec,
    );
}

/// Trials per parallel chunk of [`logical_error_rate_sliced_par`]: four
/// whole 64-trial lane words, matching the scalar path's
/// [`super::CHUNK_TRIALS`] so the two estimators parallelize at the same
/// granularity.
pub const SLICED_CHUNK_TRIALS: usize = 256;

/// Estimates the logical-X error rate with the bit-sliced 64-trials-per-
/// word kernel, serially.
///
/// Global trial `t` samples from `Xorshift64Star::stream(seed, t)`, so
/// the estimate is bit-identical to [`logical_error_rate_sliced_par`]
/// at the same seed, and the failure count exactly equals 64-per-block
/// independent [`super::run_trials_reference`] runs on the same streams.
/// This is a **new** entry point: the pre-existing
/// [`super::logical_error_rate`] / [`super::logical_error_rate_par`]
/// sample different streams and are untouched.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use qisim_surface::{montecarlo, Lattice};
///
/// let lattice = Lattice::new(3);
/// let a = montecarlo::logical_error_rate_sliced(&lattice, 0.02, 1000, 23);
/// let b = montecarlo::logical_error_rate_sliced_par(&lattice, 0.02, 1000, 23);
/// assert_eq!(a, b); // same seed, same trial→stream map, same estimate
/// ```
pub fn logical_error_rate_sliced(
    lattice: &Lattice,
    p: f64,
    trials: usize,
    seed: u64,
) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo.sliced");
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let mut scratch = SlicedScratch::new(&packed, &graph);
    let t0 = qisim_obs::enabled().then(std::time::Instant::now);
    let failures = run_trials_sliced(&packed, &graph, p, trials, seed, 0, &mut scratch);
    if let Some(t0) = t0 {
        qisim_obs::observe!("surface.montecarlo.trial_batch_ns", t0.elapsed().as_nanos() as f64);
    }
    let (stats, dec) = scratch.take_stats();
    flush_sliced_obs(trials, failures, stats, dec);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

/// Estimates the logical-X error rate with the bit-sliced kernel,
/// running [`SLICED_CHUNK_TRIALS`]-trial chunks (whole 64-trial lane
/// words) on the [`qisim_par`] pool.
///
/// Because the lane→stream map depends only on the global trial index,
/// this is bit-identical to [`logical_error_rate_sliced`] — not merely
/// to itself across thread counts.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
pub fn logical_error_rate_sliced_par(
    lattice: &Lattice,
    p: f64,
    trials: usize,
    seed: u64,
) -> McEstimate {
    assert!((0.0..=1.0).contains(&p), "physical error rate must be a probability");
    assert!(trials > 0, "need at least one trial");
    qisim_obs::span!("surface.montecarlo.sliced.par");
    let graph = DecodingGraph::new(lattice, false);
    let packed = PackedLattice::new(lattice);
    let per_chunk: Vec<(usize, SlicedStats, DecodeStats)> =
        qisim_par::par_map_chunked(trials, SLICED_CHUNK_TRIALS, |_, start, len| {
            let mut scratch = SlicedScratch::new(&packed, &graph);
            let t0 = qisim_obs::enabled().then(std::time::Instant::now);
            let failures = run_trials_sliced(&packed, &graph, p, len, seed, start, &mut scratch);
            if let Some(t0) = t0 {
                qisim_obs::observe!(
                    "surface.montecarlo.trial_batch_ns",
                    t0.elapsed().as_nanos() as f64
                );
            }
            let (stats, dec) = scratch.take_stats();
            (failures, stats, dec)
        });
    let mut failures = 0usize;
    let mut stats = SlicedStats::default();
    let mut dec = DecodeStats::default();
    for (f, s, d) in per_chunk {
        failures += f;
        stats.merge(s);
        dec.decodes += d.decodes;
        dec.rounds += d.rounds;
        dec.edges_grown += d.edges_grown;
    }
    flush_sliced_obs(trials, failures, stats, dec);
    McEstimate { logical_error: failures as f64 / trials as f64, trials, failures }
}

#[cfg(test)]
mod tests {
    use super::super::run_trials_reference;
    use super::*;

    /// 64-independent-reference-runs oracle: trial `t` of the sliced
    /// kernel must behave exactly like a one-trial reference run on
    /// `stream(seed, t)`.
    fn reference_failures(lattice: &Lattice, p: f64, trials: usize, seed: u64) -> usize {
        let graph = DecodingGraph::new(lattice, false);
        (0..trials)
            .map(|t| {
                let mut rng = Xorshift64Star::stream(seed, t as u64);
                run_trials_reference(lattice, &graph, p, 1, &mut rng)
            })
            .sum()
    }

    #[test]
    fn sliced_failures_match_64_reference_runs_bit_for_bit() {
        // The tentpole acceptance grid: d 3/5/7 × p .001/.01/.1.
        for d in [3usize, 5, 7] {
            let l = Lattice::new(d);
            for p in [0.001f64, 0.01, 0.1] {
                let seed = 0x511CED ^ ((d as u64) << 8) ^ p.to_bits();
                let trials = 640;
                let est = logical_error_rate_sliced(&l, p, trials, seed);
                assert_eq!(est.failures, reference_failures(&l, p, trials, seed), "d={d} p={p}");
                assert_eq!(est.trials, trials);
            }
        }
    }

    #[test]
    fn sliced_serial_and_par_are_bit_identical_at_any_thread_count() {
        let l = Lattice::new(5);
        let serial = logical_error_rate_sliced(&l, 0.03, 2000, 99);
        for threads in [1usize, 2, 8] {
            qisim_par::set_threads(Some(threads));
            assert_eq!(logical_error_rate_sliced_par(&l, 0.03, 2000, 99), serial, "{threads}");
        }
        qisim_par::set_threads(None);
    }

    #[test]
    fn remainder_blocks_are_neither_dropped_nor_double_counted() {
        // 63, 64, 65 straddle one lane word; 257 straddles the parallel
        // chunk boundary (256 = 4 words) with a one-trial tail.
        let l = Lattice::new(5);
        for trials in [63usize, 64, 65, 257] {
            let seed = 0xB10C ^ trials as u64;
            let expect = reference_failures(&l, 0.08, trials, seed);
            let serial = logical_error_rate_sliced(&l, 0.08, trials, seed);
            assert_eq!(serial.failures, expect, "serial trials={trials}");
            assert_eq!(serial.trials, trials);
            for threads in [1usize, 2, 3] {
                qisim_par::set_threads(Some(threads));
                let par = logical_error_rate_sliced_par(&l, 0.08, trials, seed);
                assert_eq!(par.failures, expect, "trials={trials} threads={threads}");
            }
            qisim_par::set_threads(None);
        }
    }

    #[test]
    fn degenerate_rates_take_the_word_wide_paths() {
        let l = Lattice::new(5);
        let zero = logical_error_rate_sliced(&l, 0.0, 130, 7);
        assert_eq!(zero.failures, 0);
        // p = 1 flips all 25 qubits per lane: zero syndrome, odd logical
        // row (d = 5) → every lane fails, with zero RNG influence.
        let one = logical_error_rate_sliced(&l, 1.0, 130, 7);
        assert_eq!(one.failures, 130);
    }

    #[test]
    fn sliced_stats_partition_the_trials() {
        let l = Lattice::new(7);
        let graph = DecodingGraph::new(&l, false);
        let packed = PackedLattice::new(&l);
        let mut scratch = SlicedScratch::new(&packed, &graph);
        let trials = 2048usize;
        let _ = run_trials_sliced(&packed, &graph, 0.002, trials, 3, 0, &mut scratch);
        let (stats, dec) = scratch.take_stats();
        assert_eq!(stats.words, (trials as u64).div_ceil(64));
        assert_eq!(
            stats.empty_lanes + stats.zero_syndrome_lanes + stats.fallback_trials,
            trials as u64,
            "{stats:?}"
        );
        assert!(stats.empty_lanes > stats.fallback_trials, "p=0.002 is mostly empty lanes");
        assert_eq!(
            dec.decodes + stats.memo_hits,
            stats.fallback_trials,
            "every fallback lane is either decoded or replayed from the memo: {stats:?}"
        );
        assert!(stats.memo_hits > 0, "repeat low-weight syndromes must hit the memo: {stats:?}");
        // Second batch accumulates from zero after take_stats.
        let _ = run_trials_sliced(&packed, &graph, 0.5, 10, 3, 0, &mut scratch);
        assert_eq!(scratch.stats().words, 1);
    }

    #[test]
    fn sliced_agrees_statistically_with_the_packed_estimator() {
        let l = Lattice::new(5);
        let (p, trials) = (0.06, 4000);
        let sliced = logical_error_rate_sliced(&l, p, trials, 11).logical_error;
        let packed = super::super::logical_error_rate_par(&l, p, trials, 11).logical_error;
        let sigma = (packed * (1.0 - packed) / trials as f64).sqrt().max(1e-3);
        assert!((sliced - packed).abs() < 6.0 * sigma, "sliced {sliced} vs packed {packed}");
    }
}
