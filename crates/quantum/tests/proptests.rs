//! Property-based tests of the quantum substrate's invariants.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_quantum::fidelity::{average_gate_fidelity, gate_error, state_fidelity};
use qisim_quantum::integrate::{normalize, propagator, schrodinger_evolve};
use qisim_quantum::rng::{Geometric, Rng, Xorshift64Star};
use qisim_quantum::transmon::{CoupledTransmons, Transmon};
use qisim_quantum::{CMatrix, Statevector, C64};

fn small_angle() -> impl Strategy<Value = f64> {
    -3.2f64..3.2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every standard rotation gate is unitary.
    #[test]
    fn rotation_gates_are_unitary(theta in small_angle()) {
        prop_assert!(CMatrix::rx(theta).is_unitary(1e-12));
        prop_assert!(CMatrix::ry(theta).is_unitary(1e-12));
        prop_assert!(CMatrix::rz(theta).is_unitary(1e-12));
    }

    /// `Rz(a)·Rz(b) = Rz(a+b)` up to numerical tolerance.
    #[test]
    fn rz_composes_additively(a in small_angle(), b in small_angle()) {
        let lhs = &CMatrix::rz(a) * &CMatrix::rz(b);
        let rhs = CMatrix::rz(a + b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    /// The propagator of any driven-transmon Hamiltonian is unitary.
    #[test]
    fn propagators_stay_unitary(
        i_amp in -0.3f64..0.3,
        q_amp in -0.3f64..0.3,
        detune in -0.2f64..0.2,
        duration in 1.0f64..30.0,
    ) {
        let q = Transmon::standard();
        let steps = (duration * 400.0) as usize;
        let u = propagator(3, |_| q.driven_hamiltonian(detune, i_amp, q_amp), 0.0, duration, steps);
        prop_assert!(u.is_unitary(1e-7), "norm drift too large");
    }

    /// Schrödinger evolution preserves the state norm.
    #[test]
    fn schrodinger_preserves_norm(rabi in 0.0f64..0.3, duration in 1.0f64..20.0) {
        let q = Transmon::standard();
        let mut psi = vec![C64::ONE, C64::ZERO, C64::ZERO];
        normalize(&mut psi);
        let out = schrodinger_evolve(&psi, |_| q.driven_hamiltonian(0.0, rabi, 0.0), 0.0, duration, 800);
        let norm: f64 = out.iter().map(|a| a.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
    }

    /// Average gate fidelity lies in [0, 1] and equals 1 for identical
    /// unitaries.
    #[test]
    fn fidelity_is_bounded(theta in small_angle(), phi in small_angle()) {
        let a = CMatrix::rx(theta);
        let b = CMatrix::ry(phi);
        let f = average_gate_fidelity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "fidelity {f}");
        prop_assert!(gate_error(&a, &a) < 1e-12);
    }

    /// `gate_error` is symmetric for unitaries.
    #[test]
    fn gate_error_is_symmetric(theta in small_angle(), phi in small_angle()) {
        let a = CMatrix::rx(theta);
        let b = CMatrix::rz(phi);
        let e_ab = gate_error(&a, &b);
        let e_ba = gate_error(&b, &a);
        prop_assert!((e_ab - e_ba).abs() < 1e-12);
    }

    /// Statevector gate application preserves normalization and
    /// probabilities stay a distribution.
    #[test]
    fn statevector_stays_normalized(
        qubits in 2usize..7,
        gates in proptest::collection::vec((0usize..6, 0usize..6, -3.0f64..3.0), 1..24),
    ) {
        let mut s = Statevector::zero_state(qubits);
        for (kind, q, theta) in gates {
            let q = q % qubits;
            match kind {
                0 => s.apply_1q(&CMatrix::hadamard(), q),
                1 => s.apply_1q(&CMatrix::rx(theta), q),
                2 => s.apply_1q(&CMatrix::rz(theta), q),
                3 => s.apply_pauli('X', q),
                4 => s.apply_pauli('Y', q),
                _ => {
                    let other = (q + 1) % qubits;
                    s.apply_2q(&CMatrix::cz(), q, other);
                }
            }
        }
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "probability mass {total}");
    }

    /// Measurement collapse leaves a valid, consistent state.
    #[test]
    fn collapse_is_consistent(qubits in 2usize..6, target in 0usize..6) {
        let target = target % qubits;
        let mut s = Statevector::zero_state(qubits);
        for q in 0..qubits {
            s.apply_1q(&CMatrix::hadamard(), q);
        }
        s.collapse(target, true);
        prop_assert!((s.prob_one(target) - 1.0).abs() < 1e-9);
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// State fidelity is symmetric, bounded, and 1 on identical states.
    #[test]
    fn state_fidelity_properties(qubits in 1usize..5, seed in 0u64..1000) {
        let mut s = Statevector::zero_state(qubits);
        // Deterministic pseudo-random circuit from the seed.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..6 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let q = (x >> 32) as usize % qubits;
            let theta = ((x >> 16) & 0xFFFF) as f64 / 65536.0 * 6.28;
            s.apply_1q(&CMatrix::ry(theta), q);
        }
        let f_self = state_fidelity(s.amplitudes(), s.amplitudes());
        prop_assert!((f_self - 1.0).abs() < 1e-9);
        let zero = Statevector::zero_state(qubits);
        let f_ab = state_fidelity(s.amplitudes(), zero.amplitudes());
        let f_ba = state_fidelity(zero.amplitudes(), s.amplitudes());
        prop_assert!((f_ab - f_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f_ab));
    }

    /// Kronecker products preserve unitarity and multiply dimensions.
    #[test]
    fn kron_preserves_unitarity(a in small_angle(), b in small_angle()) {
        let u = CMatrix::rx(a).kron(&CMatrix::rz(b));
        prop_assert_eq!(u.dim(), 4);
        prop_assert!(u.is_unitary(1e-12));
    }

    /// The coupled-transmon Hamiltonian is Hermitian for any detuning.
    #[test]
    fn coupled_hamiltonian_hermitian(delta in -1.0f64..1.0) {
        let pair = CoupledTransmons::standard();
        prop_assert!(pair.hamiltonian(delta).is_hermitian(1e-12));
    }

    /// Geometric-skip placement matches per-qubit Bernoulli placement in
    /// distribution: over many runs, the two samplers' mean placed-count
    /// per run must agree within combined Monte-Carlo error, and every
    /// placed position must be in range and strictly ascending.
    #[test]
    fn geometric_skip_matches_bernoulli_scan(
        p in 0.005f64..0.4,
        n in 10usize..200,
        seed in 0u64..1_000,
    ) {
        let geo = Geometric::new(p);
        let runs = 600usize;
        let mut skip_total = 0usize;
        let mut rng = Xorshift64Star::stream(seed, 1);
        for _ in 0..runs {
            let mut placed = Vec::new();
            let any = geo.positions(n, &mut rng, |q| placed.push(q));
            prop_assert!(placed.iter().all(|&q| q < n), "{placed:?} out of range {n}");
            prop_assert!(placed.windows(2).all(|w| w[0] < w[1]), "must strictly ascend");
            prop_assert_eq!(any, !placed.is_empty());
            skip_total += placed.len();
        }
        let mut scan_total = 0usize;
        let mut rng = Xorshift64Star::stream(seed, 2);
        for _ in 0..runs {
            scan_total += (0..n).filter(|_| rng.gen_f64() < p).count();
        }
        let mean_skip = skip_total as f64 / runs as f64;
        let mean_scan = scan_total as f64 / runs as f64;
        // Var of one run's count is n·p·(1−p); both estimators carry it.
        let sigma = (2.0 * n as f64 * p * (1.0 - p) / runs as f64).sqrt();
        prop_assert!(
            (mean_skip - mean_scan).abs() < 6.0 * sigma.max(1e-6),
            "skip mean {mean_skip} vs scan mean {mean_scan} (n={n}, p={p})"
        );
    }
}
