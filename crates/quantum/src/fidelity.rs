//! Gate- and state-fidelity metrics.
//!
//! The paper's gate error-rate model (Section 4.4) obtains a *noisy unitary*
//! from Hamiltonian simulation and compares it against the ideal gate; the
//! reported "gate error" is the average-gate-fidelity infidelity
//! `1 − F_avg`. These helpers implement that comparison, including the
//! projection of a multi-level (leaky) propagator onto the computational
//! subspace.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Average gate fidelity between two unitaries of dimension `d`:
/// `F_avg = (|Tr(U†V)|² + d) / (d(d+1))`.
///
/// # Panics
///
/// Panics if the matrices are not square with identical dimensions.
///
/// # Examples
///
/// ```
/// use qisim_quantum::{CMatrix, fidelity::average_gate_fidelity};
///
/// let u = CMatrix::hadamard();
/// assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-12);
/// ```
pub fn average_gate_fidelity(ideal: &CMatrix, actual: &CMatrix) -> f64 {
    let d = ideal.dim() as f64;
    assert_eq!(ideal.dim(), actual.dim(), "dimension mismatch");
    let tr = (&ideal.adjoint() * actual).trace();
    (tr.norm_sqr() + d) / (d * (d + 1.0))
}

/// Average gate *infidelity* (the "gate error" QIsim reports):
/// `1 − F_avg`, clamped into `[0, 1]`.
pub fn gate_error(ideal: &CMatrix, actual: &CMatrix) -> f64 {
    (1.0 - average_gate_fidelity(ideal, actual)).clamp(0.0, 1.0)
}

/// Projects a `levels x levels` propagator onto the computational
/// two-level subspace (the top-left 2x2 block).
///
/// The block of a leaky propagator is in general sub-unitary; the missing
/// weight is exactly the leakage, so comparing the raw block against the
/// ideal 2x2 gate correctly charges leakage as error.
///
/// # Panics
///
/// Panics if the propagator is smaller than 2x2.
pub fn computational_block(u: &CMatrix) -> CMatrix {
    assert!(u.dim() >= 2, "propagator must be at least 2x2");
    let mut out = CMatrix::zeros(2, 2);
    for r in 0..2 {
        for c in 0..2 {
            out[(r, c)] = u[(r, c)];
        }
    }
    out
}

/// Gate error of a multi-level propagator against an ideal 2x2 gate, with a
/// global-phase alignment so only physically meaningful error remains.
pub fn gate_error_leaky(ideal_2x2: &CMatrix, actual_multilevel: &CMatrix) -> f64 {
    let block = computational_block(actual_multilevel);
    let aligned = align_global_phase(ideal_2x2, &block);
    // F_avg generalized to sub-unitary M (Pedersen et al. 2007):
    // F = [Tr(M M†) + |Tr(U† M)|²] / (d(d+1)).
    let d = 2.0;
    let m = &ideal_2x2.adjoint() * &aligned;
    let tr_mm = (&aligned * &aligned.adjoint()).trace().re;
    let f = (tr_mm + m.trace().norm_sqr()) / (d * (d + 1.0));
    (1.0 - f).clamp(0.0, 1.0)
}

/// Population that has leaked outside the computational subspace when the
/// propagator acts on the computational basis states (averaged).
pub fn leakage(actual_multilevel: &CMatrix) -> f64 {
    let n = actual_multilevel.dim();
    if n <= 2 {
        return 0.0;
    }
    let mut leak = 0.0;
    for col in 0..2 {
        for row in 2..n {
            leak += actual_multilevel[(row, col)].norm_sqr();
        }
    }
    leak / 2.0
}

/// Rescales `actual` by a global phase so that `Tr(ideal† actual)` is real
/// and non-negative, removing the physically meaningless global phase.
pub fn align_global_phase(ideal: &CMatrix, actual: &CMatrix) -> CMatrix {
    let tr = (&ideal.adjoint() * actual).trace();
    if tr.abs() < 1e-300 {
        return actual.clone();
    }
    actual.scaled(C64::cis(-tr.arg()))
}

/// Fidelity between two pure states `|<a|b>|²`.
///
/// # Panics
///
/// Panics if the state lengths differ.
pub fn state_fidelity(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len(), "state dimension mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum::<C64>().norm_sqr()
}

/// Fidelity of a pure target state against a density matrix: `<ψ|ρ|ψ>`.
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn state_vs_density_fidelity(psi: &[C64], rho: &CMatrix) -> f64 {
    assert_eq!(psi.len(), rho.dim(), "dimension mismatch");
    let rho_psi = rho.mul_vec(psi);
    psi.iter().zip(rho_psi.iter()).map(|(x, y)| x.conj() * *y).sum::<C64>().re
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identical_gates_have_unit_fidelity() {
        for g in [CMatrix::pauli_x(), CMatrix::hadamard(), CMatrix::rz(0.7)] {
            assert!((average_gate_fidelity(&g, &g) - 1.0).abs() < 1e-12);
            assert!(gate_error(&g, &g) < 1e-12);
        }
    }

    #[test]
    fn orthogonal_gates_have_known_fidelity() {
        // F(I, X) = (|Tr X|² + 2)/6 = 2/6 = 1/3.
        let f = average_gate_fidelity(&CMatrix::identity(2), &CMatrix::pauli_x());
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_overrotation_gives_quadratic_error() {
        let eps = 1e-3;
        let err = gate_error(&CMatrix::rx(PI), &CMatrix::rx(PI + eps));
        // error ≈ eps²/6 for small eps
        assert!((err - eps * eps / 6.0).abs() < 1e-9, "err {err}");
    }

    #[test]
    fn global_phase_is_ignored_after_alignment() {
        let u = CMatrix::hadamard();
        let v = u.scaled(C64::cis(1.234));
        let aligned = align_global_phase(&u, &v);
        assert!(gate_error(&u, &aligned) < 1e-12);
    }

    #[test]
    fn leaky_identity_has_zero_error() {
        let u3 = CMatrix::identity(3);
        assert!(gate_error_leaky(&CMatrix::identity(2), &u3) < 1e-12);
        assert_eq!(leakage(&u3), 0.0);
    }

    #[test]
    fn leakage_counts_third_level_weight() {
        // A propagator moving 1% of |1> population to |2>.
        let mut u = CMatrix::identity(3);
        let theta: f64 = 0.1;
        u[(1, 1)] = C64::from(theta.cos());
        u[(2, 1)] = C64::from(theta.sin());
        u[(1, 2)] = C64::from(-theta.sin());
        u[(2, 2)] = C64::from(theta.cos());
        let leak = leakage(&u);
        assert!((leak - theta.sin().powi(2) / 2.0).abs() < 1e-12);
        let err = gate_error_leaky(&CMatrix::identity(2), &u);
        assert!(err > 0.0);
    }

    #[test]
    fn state_fidelity_basics() {
        let zero = [C64::ONE, C64::ZERO];
        let one = [C64::ZERO, C64::ONE];
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let plus = [C64::from(s), C64::from(s)];
        assert!((state_fidelity(&zero, &zero) - 1.0).abs() < 1e-12);
        assert!(state_fidelity(&zero, &one) < 1e-12);
        assert!((state_fidelity(&zero, &plus) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_fidelity_of_mixed_state() {
        let zero = [C64::ONE, C64::ZERO];
        let rho = CMatrix::diag(&[C64::from(0.8), C64::from(0.2)]);
        assert!((state_vs_density_fidelity(&zero, &rho) - 0.8).abs() < 1e-12);
    }
}
