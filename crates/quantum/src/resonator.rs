//! Dispersive qubit–resonator readout dynamics.
//!
//! In the dispersive regime the readout resonator's coherent amplitude obeys
//! the classical-looking equation
//!
//! `dα/dt = −i(Δr ± χ)·α − (κ/2)·α − i·ε(t)`
//!
//! where the sign of the dispersive pull `χ` depends on the qubit state.
//! QIsim uses the two trajectories `α₀(t)` / `α₁(t)` to synthesize the
//! reflected microwave the RX circuit digitizes (CMOS readout, Section
//! 4.4.4) and to determine the photon population that drives JPM tunneling
//! (SFQ readout, Section 4.4.5).
//!
//! Units: time in ns, frequencies in GHz (rates `κ, χ, ε` in rad/ns).

use crate::complex::C64;
use crate::transmon::ghz_to_rad;

/// A readout resonator dispersively coupled to a qubit.
///
/// # Examples
///
/// ```
/// use qisim_quantum::resonator::DispersiveResonator;
///
/// let r = DispersiveResonator::standard();
/// let traj = r.ring_up(false, r.steady_drive_rad(), 500.0, 500);
/// // After many 1/κ the amplitude has settled near steady state.
/// let steady = r.steady_state(false, r.steady_drive_rad());
/// assert!((traj.last_amplitude() - steady).abs() < 0.05 * steady.abs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispersiveResonator {
    /// Resonator frequency in GHz.
    pub freq_ghz: f64,
    /// Resonator linewidth κ in GHz (energy decay rate / 2π).
    pub kappa_ghz: f64,
    /// Dispersive shift χ in GHz: qubit |1> pulls the resonator by −2χ
    /// relative to |0> in this convention (±χ about the mean).
    pub chi_ghz: f64,
    /// Drive detuning from the bare resonator frequency in GHz.
    pub drive_detuning_ghz: f64,
}

impl DispersiveResonator {
    /// Typical readout resonator: 7 GHz, κ/2π = 5 MHz, χ/2π = 2.5 MHz,
    /// driven at the mean of the two pulled frequencies.
    pub fn standard() -> Self {
        DispersiveResonator {
            freq_ghz: 7.0,
            kappa_ghz: 0.005,
            chi_ghz: 0.0025,
            drive_detuning_ghz: 0.0,
        }
    }

    /// κ in rad/ns.
    pub fn kappa_rad(&self) -> f64 {
        ghz_to_rad(self.kappa_ghz)
    }

    /// χ in rad/ns.
    pub fn chi_rad(&self) -> f64 {
        ghz_to_rad(self.chi_ghz)
    }

    /// A drive strength (rad/ns) that produces ~10 steady-state photons for
    /// the standard parameters: `ε = sqrt(n̄)·sqrt(χ² + κ²/4)` with n̄ = 10.
    pub fn steady_drive_rad(&self) -> f64 {
        let detune = self.chi_rad().hypot(self.kappa_rad() / 2.0);
        10.0f64.sqrt() * detune
    }

    /// Qubit-state-dependent detuning (rad/ns) seen by the drive frame.
    fn pulled_detuning_rad(&self, excited: bool) -> f64 {
        let base = ghz_to_rad(self.drive_detuning_ghz);
        if excited {
            base - self.chi_rad()
        } else {
            base + self.chi_rad()
        }
    }

    /// Steady-state coherent amplitude for a constant drive `eps` (rad/ns):
    /// `α_ss = −i·ε / (i·Δ± + κ/2)`.
    pub fn steady_state(&self, excited: bool, eps: f64) -> C64 {
        let delta = self.pulled_detuning_rad(excited);
        let denom = C64::new(self.kappa_rad() / 2.0, delta);
        -C64::I * eps / denom
    }

    /// Integrates the coherent amplitude from vacuum under a constant drive
    /// for `duration_ns`, sampling `samples` points.
    pub fn ring_up(&self, excited: bool, eps: f64, duration_ns: f64, samples: usize) -> Trajectory {
        self.evolve(excited, |_| eps, duration_ns, samples)
    }

    /// Integrates `dα/dt = −iΔ±·α − (κ/2)·α − i·ε(t)` with RK4 from vacuum.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn evolve<E>(
        &self,
        excited: bool,
        mut eps: E,
        duration_ns: f64,
        samples: usize,
    ) -> Trajectory
    where
        E: FnMut(f64) -> f64,
    {
        assert!(samples > 0, "need at least one sample");
        let delta = self.pulled_detuning_rad(excited);
        let kappa = self.kappa_rad();
        let coeff = C64::new(-kappa / 2.0, -delta);
        let dt = duration_ns / samples as f64;

        let mut alpha = C64::ZERO;
        let mut times = Vec::with_capacity(samples + 1);
        let mut amps = Vec::with_capacity(samples + 1);
        times.push(0.0);
        amps.push(alpha);

        let rhs = |a: C64, e: f64| coeff * a - C64::I * e;
        for n in 0..samples {
            let t = n as f64 * dt;
            let e1 = eps(t);
            let e2 = eps(t + dt / 2.0);
            let e3 = eps(t + dt);
            let k1 = rhs(alpha, e1);
            let k2 = rhs(alpha + k1 * (dt / 2.0), e2);
            let k3 = rhs(alpha + k2 * (dt / 2.0), e2);
            let k4 = rhs(alpha + k3 * dt, e3);
            alpha += (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (dt / 6.0);
            times.push(t + dt);
            amps.push(alpha);
        }
        Trajectory { times, amplitudes: amps }
    }

    /// Time for the ring-up transient to settle to within `tol` of steady
    /// state (analytic: the transient decays as `exp(−κt/2)`).
    pub fn settle_time_ns(&self, tol: f64) -> f64 {
        assert!(tol > 0.0 && tol < 1.0, "tol must be in (0,1)");
        -2.0 * tol.ln() / self.kappa_rad()
    }

    /// Separation of the two pointer states under constant drive `eps`
    /// at steady state, `|α₀ − α₁|`.
    pub fn pointer_separation(&self, eps: f64) -> f64 {
        (self.steady_state(false, eps) - self.steady_state(true, eps)).abs()
    }
}

/// A sampled coherent-amplitude trajectory `α(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    times: Vec<f64>,
    amplitudes: Vec<C64>,
}

impl Trajectory {
    /// Sample times in ns.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Coherent amplitudes at each sample time.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// Final amplitude.
    pub fn last_amplitude(&self) -> C64 {
        *self.amplitudes.last().expect("trajectory is never empty")
    }

    /// Photon number `|α(t)|²` at each sample.
    pub fn photon_numbers(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Mean photon number across the trajectory.
    pub fn mean_photons(&self) -> f64 {
        let n = self.amplitudes.len() as f64;
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_up_approaches_steady_state() {
        let r = DispersiveResonator::standard();
        let eps = r.steady_drive_rad();
        for excited in [false, true] {
            let traj = r.ring_up(excited, eps, 800.0, 1600);
            let ss = r.steady_state(excited, eps);
            assert!(
                (traj.last_amplitude() - ss).abs() < 1e-2 * ss.abs().max(1.0),
                "did not settle (excited={excited})"
            );
        }
    }

    #[test]
    fn steady_photon_number_matches_target() {
        let r = DispersiveResonator::standard();
        let eps = r.steady_drive_rad();
        let n0 = r.steady_state(false, eps).norm_sqr();
        assert!((n0 - 10.0).abs() < 0.5, "n = {n0}");
    }

    #[test]
    fn pointer_states_differ() {
        let r = DispersiveResonator::standard();
        let eps = r.steady_drive_rad();
        let sep = r.pointer_separation(eps);
        assert!(sep > 1.0, "pointer separation too small: {sep}");
    }

    #[test]
    fn no_drive_stays_in_vacuum() {
        let r = DispersiveResonator::standard();
        let traj = r.ring_up(false, 0.0, 100.0, 100);
        assert!(traj.last_amplitude().abs() < 1e-12);
        assert_eq!(traj.times().len(), 101);
    }

    #[test]
    fn settle_time_is_inverse_kappa_scale() {
        let r = DispersiveResonator::standard();
        let t = r.settle_time_ns(0.01);
        // κ/2π = 5 MHz -> 1/κ ≈ 31.8 ns; settling to 1% takes ~9.2/κ/2... ≈ 293 ns
        assert!(t > 100.0 && t < 1000.0, "settle time {t}");
    }

    #[test]
    fn decay_after_drive_off() {
        let r = DispersiveResonator::standard();
        let eps = r.steady_drive_rad();
        // Drive for 400 ns then free decay for 400 ns.
        let traj = r.evolve(false, |t| if t < 400.0 { eps } else { 0.0 }, 800.0, 1600);
        let n = traj.photon_numbers();
        let peak = n[800];
        let end = *n.last().unwrap();
        assert!(end < 0.01 * peak, "photons did not decay: {end} vs peak {peak}");
    }
}
