//! An n-qubit statevector simulator.
//!
//! The workload-level error simulator (Section 4.5 of the paper) runs
//! Pauli-channel Monte-Carlo trajectories over benchmark circuits of up to
//! ~16 qubits; this module provides the underlying state engine: gate
//! application, Pauli injection, measurement sampling, and expectation
//! values. Qubit 0 is the least-significant bit of the basis index.

use crate::complex::C64;
use crate::matrix::CMatrix;
use crate::rng::Rng;

/// A pure state of `n` qubits stored as `2^n` complex amplitudes.
///
/// # Examples
///
/// ```
/// use qisim_quantum::{CMatrix, Statevector};
///
/// let mut psi = Statevector::zero_state(2);
/// psi.apply_1q(&CMatrix::hadamard(), 0);
/// psi.apply_2q(&CMatrix::cnot(), 0, 1);
/// // Bell state: P(00) = P(11) = 1/2.
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    qubits: usize,
    amplitudes: Vec<C64>,
}

impl Statevector {
    /// Maximum supported register size (amplitude vector of 2^24 ≈ 16M).
    pub const MAX_QUBITS: usize = 24;

    /// Creates the all-zeros computational basis state `|0…0>`.
    ///
    /// # Panics
    ///
    /// Panics if `qubits == 0` or exceeds [`Statevector::MAX_QUBITS`].
    pub fn zero_state(qubits: usize) -> Self {
        assert!(qubits > 0, "need at least one qubit");
        assert!(qubits <= Self::MAX_QUBITS, "register too large");
        let mut amplitudes = vec![C64::ZERO; 1 << qubits];
        amplitudes[0] = C64::ONE;
        Statevector { qubits, amplitudes }
    }

    /// Creates a state from raw amplitudes (must have power-of-two length
    /// and unit norm within 1e-6).
    ///
    /// # Panics
    ///
    /// Panics on invalid length or non-normalized input.
    pub fn from_amplitudes(amplitudes: Vec<C64>) -> Self {
        let len = amplitudes.len();
        assert!(len.is_power_of_two() && len >= 2, "length must be a power of two >= 2");
        let qubits = len.trailing_zeros() as usize;
        let norm: f64 = amplitudes.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state is not normalized (norm² = {norm})");
        Statevector { qubits, amplitudes }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Raw amplitudes, little-endian basis ordering.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// Applies a 2x2 unitary to qubit `target`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not 2x2 or `target` is out of range.
    pub fn apply_1q(&mut self, gate: &CMatrix, target: usize) {
        assert_eq!(gate.dim(), 2, "1q gate must be 2x2");
        assert!(target < self.qubits, "target out of range");
        let bit = 1usize << target;
        let g00 = gate[(0, 0)];
        let g01 = gate[(0, 1)];
        let g10 = gate[(1, 0)];
        let g11 = gate[(1, 1)];
        let n = self.amplitudes.len();
        let mut i = 0;
        while i < n {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amplitudes[i];
                let a1 = self.amplitudes[j];
                self.amplitudes[i] = g00 * a0 + g01 * a1;
                self.amplitudes[j] = g10 * a0 + g11 * a1;
            }
            i += 1;
        }
    }

    /// Applies a 4x4 unitary to the qubit pair `(low, high)`, where `low`
    /// indexes the least-significant bit of the gate's 2-bit basis.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not 4x4 or the qubits coincide / out-of-range.
    pub fn apply_2q(&mut self, gate: &CMatrix, low: usize, high: usize) {
        assert_eq!(gate.dim(), 4, "2q gate must be 4x4");
        assert!(low < self.qubits && high < self.qubits, "qubit out of range");
        assert_ne!(low, high, "qubits must differ");
        let bl = 1usize << low;
        let bh = 1usize << high;
        let n = self.amplitudes.len();
        for base in 0..n {
            if base & bl != 0 || base & bh != 0 {
                continue;
            }
            let idx = [base, base | bl, base | bh, base | bl | bh];
            let olds = [
                self.amplitudes[idx[0]],
                self.amplitudes[idx[1]],
                self.amplitudes[idx[2]],
                self.amplitudes[idx[3]],
            ];
            for (r, &out_i) in idx.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (c, &old) in olds.iter().enumerate() {
                    acc = gate[(r, c)].mul_add(old, acc);
                }
                self.amplitudes[out_i] = acc;
            }
        }
    }

    /// Applies a Pauli operator (`'I' | 'X' | 'Y' | 'Z'`) to `target`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown Pauli label.
    pub fn apply_pauli(&mut self, pauli: char, target: usize) {
        match pauli {
            'I' => {}
            'X' => self.apply_1q(&CMatrix::pauli_x(), target),
            'Y' => self.apply_1q(&CMatrix::pauli_y(), target),
            'Z' => self.apply_1q(&CMatrix::pauli_z(), target),
            other => panic!("unknown Pauli label {other:?}"),
        }
    }

    /// Probability of each computational basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Probability that qubit `target` reads 1.
    pub fn prob_one(&self, target: usize) -> f64 {
        assert!(target < self.qubits, "target out of range");
        let bit = 1usize << target;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, z)| z.norm_sqr())
            .sum()
    }

    /// Samples one full-register measurement outcome without collapsing.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let x = rng.gen_f64();
        let mut acc = 0.0;
        for (i, z) in self.amplitudes.iter().enumerate() {
            acc += z.norm_sqr();
            if x < acc {
                return i;
            }
        }
        self.amplitudes.len() - 1
    }

    /// Measures qubit `target`, collapsing the state; returns the outcome.
    pub fn measure<R: Rng>(&mut self, target: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(target);
        let outcome = rng.gen_f64() < p1;
        self.collapse(target, outcome);
        outcome
    }

    /// Projects qubit `target` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the projected state has zero norm (measuring an impossible
    /// outcome).
    pub fn collapse(&mut self, target: usize, outcome: bool) {
        let bit = 1usize << target;
        let mut norm2 = 0.0;
        for (i, z) in self.amplitudes.iter_mut().enumerate() {
            if ((i & bit) != 0) != outcome {
                *z = C64::ZERO;
            } else {
                norm2 += z.norm_sqr();
            }
        }
        assert!(norm2 > 0.0, "collapsing onto a zero-probability outcome");
        let inv = 1.0 / norm2.sqrt();
        for z in self.amplitudes.iter_mut() {
            *z *= inv;
        }
    }

    /// Overlap fidelity `|<self|other>|²`.
    ///
    /// # Panics
    ///
    /// Panics if register sizes differ.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        assert_eq!(self.qubits, other.qubits, "register size mismatch");
        crate::fidelity::state_fidelity(&self.amplitudes, &other.amplitudes)
    }

    /// Expectation of Z on `target`.
    pub fn expect_z(&self, target: usize) -> f64 {
        1.0 - 2.0 * self.prob_one(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xorshift64Star;

    #[test]
    fn zero_state_has_unit_probability_at_zero() {
        let psi = Statevector::zero_state(3);
        let p = psi.probabilities();
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ghz_state_probabilities() {
        let n = 4;
        let mut psi = Statevector::zero_state(n);
        psi.apply_1q(&CMatrix::hadamard(), 0);
        for k in 1..n {
            psi.apply_2q(&CMatrix::cnot(), k - 1, k);
        }
        let p = psi.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[(1 << n) - 1] - 0.5).abs() < 1e-12);
        let middle: f64 = p[1..(1 << n) - 1].iter().sum();
        assert!(middle < 1e-12);
    }

    #[test]
    fn cnot_control_is_low_qubit() {
        // apply_2q(cnot, low=0, high=1): control = gate qubit 0 = our `low`.
        let mut psi = Statevector::zero_state(2);
        psi.apply_1q(&CMatrix::pauli_x(), 0); // |01> in (q1 q0) order -> index 1
        psi.apply_2q(&CMatrix::cnot(), 0, 1);
        // control q0 = 1, so target flips: index 3.
        assert!((psi.probabilities()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_flips() {
        let mut psi = Statevector::zero_state(1);
        psi.apply_pauli('X', 0);
        assert!((psi.prob_one(0) - 1.0).abs() < 1e-12);
        psi.apply_pauli('Y', 0);
        assert!(psi.prob_one(0) < 1e-12);
        psi.apply_pauli('Z', 0); // phase only
        assert!(psi.prob_one(0) < 1e-12);
    }

    #[test]
    fn measurement_collapses_bell_pair() {
        let mut rng = Xorshift64Star::seed_from_u64(7);
        for _ in 0..20 {
            let mut psi = Statevector::zero_state(2);
            psi.apply_1q(&CMatrix::hadamard(), 0);
            psi.apply_2q(&CMatrix::cnot(), 0, 1);
            let m0 = psi.measure(0, &mut rng);
            let m1 = psi.measure(1, &mut rng);
            assert_eq!(m0, m1, "Bell pair must be correlated");
        }
    }

    #[test]
    fn sampling_distribution_roughly_uniform_for_plus_states() {
        let mut rng = Xorshift64Star::seed_from_u64(42);
        let n = 3;
        let mut psi = Statevector::zero_state(n);
        for k in 0..n {
            psi.apply_1q(&CMatrix::hadamard(), k);
        }
        let shots = 8000;
        let mut counts = vec![0usize; 1 << n];
        for _ in 0..shots {
            counts[psi.sample(&mut rng)] += 1;
        }
        let expected = shots as f64 / (1 << n) as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < 5.0 * expected.sqrt());
        }
    }

    #[test]
    fn expect_z_signs() {
        let mut psi = Statevector::zero_state(1);
        assert!((psi.expect_z(0) - 1.0).abs() < 1e-12);
        psi.apply_pauli('X', 0);
        assert!((psi.expect_z(0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_rotated_states() {
        let mut a = Statevector::zero_state(1);
        let b = Statevector::zero_state(1);
        a.apply_1q(&CMatrix::ry(0.2), 0);
        let f = a.fidelity(&b);
        assert!((f - (0.1f64).cos().powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_rejects_unnormalized() {
        let _ = Statevector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }
}
