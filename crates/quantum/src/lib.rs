//! # qisim-quantum
//!
//! Quantum-dynamics substrate for the QIsim quantum–classical-interface
//! (QCI) scalability framework (reproduction of Min et al., *QIsim:
//! Architecting 10+K Qubit QC Interfaces Toward Quantum Supremacy*,
//! ISCA 2023).
//!
//! The paper's gate and readout error-rate models (its Section 4.4) are all
//! built on Hamiltonian simulation of small superconducting-circuit systems;
//! this crate provides everything those models need, implemented from
//! scratch:
//!
//! * [`C64`] — complex arithmetic;
//! * [`CMatrix`] — dense complex matrices with the standard gate set and
//!   bosonic ladder operators;
//! * [`integrate`] — fixed-step RK4 integrators for Schrödinger dynamics,
//!   full propagators, and the Lindblad master equation;
//! * [`transmon`] — single and coupled flux-tunable transmon Hamiltonians
//!   (drive and CZ physics);
//! * [`resonator`] — dispersive readout (coherent-amplitude trajectories);
//! * [`jpm`] — Josephson-photomultiplier tunneling for SFQ readout;
//! * [`fidelity`] — average-gate-fidelity error metrics with leakage;
//! * [`Statevector`] — an n-qubit state engine for workload-level
//!   Pauli-channel Monte-Carlo.
//!
//! # Examples
//!
//! Simulate a resonant 25 ns pi-pulse on a three-level transmon and measure
//! the gate error against the ideal X gate:
//!
//! ```
//! use qisim_quantum::{CMatrix, integrate::propagator, fidelity, transmon::Transmon};
//! use std::f64::consts::PI;
//!
//! let q = Transmon::standard();
//! let duration_ns = 25.0;
//! // Constant-envelope pi pulse (a real pulse would be shaped).
//! let rabi = PI / duration_ns;
//! let u = propagator(3, |_| q.driven_hamiltonian(0.0, rabi, 0.0), 0.0, duration_ns, 2500);
//! let err = fidelity::gate_error_leaky(&CMatrix::pauli_x(), &u);
//! assert!(err < 0.05); // square pulses are noticeably leaky
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod fidelity;
pub mod integrate;
pub mod jpm;
pub mod matrix;
pub mod resonator;
pub mod rng;
pub mod statevector;
pub mod transmon;

pub use complex::C64;
pub use matrix::CMatrix;
pub use statevector::Statevector;
