//! Transmon qubit Hamiltonians.
//!
//! Unit convention for this module: **time in nanoseconds, frequencies in
//! GHz**, so angular frequencies (`2π·f`) are in rad/ns and integrators can
//! take O(0.001–0.01 ns) steps with well-conditioned numbers.
//!
//! Two models are provided:
//!
//! * a single flux-tunable transmon truncated to `levels` states, driven
//!   through its charge line by an I/Q-modulated microwave (single-qubit
//!   gates, Section 4.4.1/4.4.2 of the paper), and
//! * a pair of capacitively-coupled transmons in the 3⊗3 product space used
//!   for flux-pulsed CZ gates (Section 4.4.3).

use crate::complex::C64;
use crate::matrix::CMatrix;
use std::f64::consts::PI;

/// Converts a frequency in GHz to an angular frequency in rad/ns.
#[inline]
pub fn ghz_to_rad(f_ghz: f64) -> f64 {
    2.0 * PI * f_ghz
}

/// A single superconducting transmon qubit.
///
/// # Examples
///
/// ```
/// use qisim_quantum::transmon::Transmon;
///
/// let q = Transmon::standard();
/// assert_eq!(q.levels, 3);
/// let h = q.rotating_hamiltonian(0.0);
/// assert!(h.is_hermitian(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmon {
    /// Qubit (0↔1) transition frequency in GHz.
    pub freq_ghz: f64,
    /// Anharmonicity `α = ω12 − ω01` in GHz (negative for transmons).
    pub anharmonicity_ghz: f64,
    /// Number of retained energy levels (≥ 2; 3 captures leakage).
    pub levels: usize,
}

impl Transmon {
    /// Creates a transmon with the given frequency and anharmonicity.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn new(freq_ghz: f64, anharmonicity_ghz: f64, levels: usize) -> Self {
        assert!(levels >= 2, "a qubit needs at least two levels");
        Transmon { freq_ghz, anharmonicity_ghz, levels }
    }

    /// A typical flux-tunable transmon: 5 GHz, −330 MHz anharmonicity,
    /// three retained levels.
    pub fn standard() -> Self {
        Transmon::new(5.0, -0.33, 3)
    }

    /// Bare (lab-frame) Hamiltonian `ω·n + (α/2)·n(n−1)` in rad/ns.
    pub fn bare_hamiltonian(&self) -> CMatrix {
        let omega = ghz_to_rad(self.freq_ghz);
        let alpha = ghz_to_rad(self.anharmonicity_ghz);
        let entries: Vec<C64> = (0..self.levels)
            .map(|k| {
                let n = k as f64;
                C64::from(omega * n + alpha / 2.0 * n * (n - 1.0))
            })
            .collect();
        CMatrix::diag(&entries)
    }

    /// Hamiltonian in the frame rotating at `freq_ghz + detuning_ghz`:
    /// `−Δ·n + (α/2)·n(n−1)` where `Δ = 2π·detuning_ghz`.
    pub fn rotating_hamiltonian(&self, detuning_ghz: f64) -> CMatrix {
        let delta = ghz_to_rad(detuning_ghz);
        let alpha = ghz_to_rad(self.anharmonicity_ghz);
        let entries: Vec<C64> = (0..self.levels)
            .map(|k| {
                let n = k as f64;
                C64::from(-delta * n + alpha / 2.0 * n * (n - 1.0))
            })
            .collect();
        CMatrix::diag(&entries)
    }

    /// Rotating-wave-approximation drive term for in-phase amplitude `i_amp`
    /// and quadrature amplitude `q_amp` (both in rad/ns of Rabi rate):
    /// `H_d = (I/2)(a+a†) + (Q/2)·i(a†−a)`.
    pub fn drive_hamiltonian(&self, i_amp: f64, q_amp: f64) -> CMatrix {
        let a = CMatrix::annihilation(self.levels);
        let adag = CMatrix::creation(self.levels);
        let x = &a + &adag;
        let y = (&adag - &a).scaled(C64::I);
        &x.scaled(C64::from(i_amp / 2.0)) + &y.scaled(C64::from(q_amp / 2.0))
    }

    /// Full rotating-frame Hamiltonian for a drive detuned by
    /// `detuning_ghz` with the given instantaneous I/Q amplitudes.
    pub fn driven_hamiltonian(&self, detuning_ghz: f64, i_amp: f64, q_amp: f64) -> CMatrix {
        &self.rotating_hamiltonian(detuning_ghz) + &self.drive_hamiltonian(i_amp, q_amp)
    }

    /// Projector onto the computational (two lowest) levels.
    pub fn computational_projector(&self) -> CMatrix {
        let mut p = CMatrix::zeros(self.levels, self.levels);
        p[(0, 0)] = C64::ONE;
        p[(1, 1)] = C64::ONE;
        p
    }
}

/// Two capacitively-coupled flux-tunable transmons for CZ-gate simulation.
///
/// The Hilbert space is the product of two `levels`-level transmons; the
/// frame rotates at the *static* qubit's frequency so only the tuned qubit's
/// time-dependent detuning appears.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledTransmons {
    /// Flux-tunable qubit whose frequency the pulse circuit moves.
    pub tuned: Transmon,
    /// Static partner qubit.
    pub fixed: Transmon,
    /// Exchange coupling strength `g` in GHz.
    pub coupling_ghz: f64,
}

impl CoupledTransmons {
    /// Creates a coupled pair.
    ///
    /// # Panics
    ///
    /// Panics if the two transmons retain a different number of levels.
    pub fn new(tuned: Transmon, fixed: Transmon, coupling_ghz: f64) -> Self {
        assert_eq!(tuned.levels, fixed.levels, "level truncation must match");
        CoupledTransmons { tuned, fixed, coupling_ghz }
    }

    /// A standard CZ pair: 5.8 GHz tunable and 5.0 GHz fixed transmons with
    /// −330 MHz anharmonicities and 20 MHz coupling, three levels each.
    pub fn standard() -> Self {
        CoupledTransmons::new(Transmon::new(5.8, -0.33, 3), Transmon::new(5.0, -0.33, 3), 0.020)
    }

    /// Product-space dimension.
    pub fn dim(&self) -> usize {
        self.tuned.levels * self.fixed.levels
    }

    /// Rotating-frame Hamiltonian (rad/ns) with the tuned qubit detuned from
    /// the fixed qubit by `delta_ghz` (its instantaneous frequency minus the
    /// fixed qubit's frequency).
    ///
    /// `H = Δ·n₁ + (α₁/2)n₁(n₁−1) + (α₂/2)n₂(n₂−1) + g(a₁†a₂ + a₁a₂†)`.
    pub fn hamiltonian(&self, delta_ghz: f64) -> CMatrix {
        let n = self.tuned.levels;
        let id = CMatrix::identity(n);
        let num = CMatrix::number(n);
        let a = CMatrix::annihilation(n);
        let adag = CMatrix::creation(n);

        let delta = ghz_to_rad(delta_ghz);
        let alpha1 = ghz_to_rad(self.tuned.anharmonicity_ghz);
        let alpha2 = ghz_to_rad(self.fixed.anharmonicity_ghz);
        let g = ghz_to_rad(self.coupling_ghz);

        // Anharmonic part (α/2)·n(n−1) as a diagonal.
        let anharm = |alpha: f64| -> CMatrix {
            CMatrix::diag(
                &(0..n)
                    .map(|k| {
                        let kf = k as f64;
                        C64::from(alpha / 2.0 * kf * (kf - 1.0))
                    })
                    .collect::<Vec<_>>(),
            )
        };

        let h1 = &num.scaled(C64::from(delta)) + &anharm(alpha1);
        let h2 = anharm(alpha2);
        let local = &h1.kron(&id) + &id.kron(&h2);
        let exch = &adag.kron(&a) + &a.kron(&adag);
        &local + &exch.scaled(C64::from(g))
    }

    /// Index of the product basis state `|n1 n2>`.
    pub fn basis_index(&self, n1: usize, n2: usize) -> usize {
        assert!(n1 < self.tuned.levels && n2 < self.fixed.levels, "level out of range");
        n1 * self.fixed.levels + n2
    }

    /// The detuning (GHz) at which `|11>` and `|02>` become resonant, i.e.
    /// where the CZ interaction is strongest: `Δ = −α₂`.
    pub fn cz_resonance_detuning_ghz(&self) -> f64 {
        -self.fixed.anharmonicity_ghz
    }

    /// Idle detuning in GHz (difference of the bare qubit frequencies).
    pub fn idle_detuning_ghz(&self) -> f64 {
        self.tuned.freq_ghz - self.fixed.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::propagator;

    #[test]
    fn rotating_frame_resonant_drive_is_detuning_free() {
        let q = Transmon::standard();
        let h = q.rotating_hamiltonian(0.0);
        assert_eq!(h[(0, 0)], C64::ZERO);
        assert_eq!(h[(1, 1)], C64::ZERO);
        // Second level carries the anharmonicity.
        assert!((h[(2, 2)].re - ghz_to_rad(-0.33)).abs() < 1e-9);
    }

    #[test]
    fn drive_hamiltonian_is_hermitian() {
        let q = Transmon::standard();
        for (i, qq) in [(0.1, 0.0), (0.0, 0.2), (0.05, -0.07)] {
            assert!(q.drive_hamiltonian(i, qq).is_hermitian(1e-12));
        }
    }

    #[test]
    fn two_level_resonant_pi_pulse_flips_qubit() {
        let q = Transmon::new(5.0, -0.33, 2);
        // Constant drive Ω for t = π/Ω.
        let rabi = ghz_to_rad(0.02); // 20 MHz
        let t = PI / rabi;
        let u = propagator(2, |_| q.driven_hamiltonian(0.0, rabi, 0.0), 0.0, t, 2000);
        // |<1|U|0>| = 1.
        assert!((u[(1, 0)].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn three_level_pi_pulse_leaks_slightly() {
        let q = Transmon::standard();
        let rabi = ghz_to_rad(0.04); // fast pulse -> visible leakage
        let t = PI / rabi;
        let u = propagator(3, |_| q.driven_hamiltonian(0.0, rabi, 0.0), 0.0, t, 4000);
        let leak = u[(2, 0)].norm_sqr();
        assert!(leak > 1e-6, "expected visible leakage, got {leak}");
        assert!(leak < 0.1, "leakage unreasonably large: {leak}");
    }

    #[test]
    fn coupled_hamiltonian_is_hermitian_and_block_structured() {
        let pair = CoupledTransmons::standard();
        let h = pair.hamiltonian(0.4);
        assert!(h.is_hermitian(1e-12));
        // The exchange term couples |11> and |02> (same total excitation).
        let i11 = pair.basis_index(1, 1);
        let i02 = pair.basis_index(0, 2);
        assert!(h[(i11, i02)].abs() > 0.0);
        // But not |00> and |11> (different excitation number).
        let i00 = pair.basis_index(0, 0);
        assert_eq!(h[(i00, i11)], C64::ZERO);
    }

    #[test]
    fn cz_resonance_matches_anharmonicity() {
        let pair = CoupledTransmons::standard();
        assert!((pair.cz_resonance_detuning_ghz() - 0.33).abs() < 1e-12);
        assert!((pair.idle_detuning_ghz() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn one_level_transmon_panics() {
        let _ = Transmon::new(5.0, -0.3, 1);
    }
}
