//! Josephson photomultiplier (JPM) tunneling model.
//!
//! The SFQ-based readout (Section 3.4.3 / 4.4.5 of the paper) converts the
//! readout resonator's photon population into a latched JPM state: when the
//! JPM is flux-pulsed onto resonance with the resonator, photons drive the
//! JPM's metastable |e⟩ state, which then tunnels into the latched
//! measurement well at a *bright* rate much larger than the photon-free
//! *dark* rate. Following the rate-equation treatment of Govia et al.
//! (Phys. Rev. A 86, 032311 and 90, 062307), the tunneling probability after
//! a pulse of duration `t` is
//!
//! `P(tunnel) = 1 − exp(−∫ Γ(t') dt')`,  `Γ(t) = Γ_dark + n̄(t)·Γ_bright`.
//!
//! A small Lindblad cross-check (resonator Fock space ⊗ 2-level JPM with an
//! absorbing tunneled population) validates the rate model in unit tests.
//!
//! Units: time in ns, rates in 1/ns.

use crate::complex::C64;
use crate::integrate::{lindblad_evolve, Collapse};
use crate::matrix::CMatrix;

/// Rate-equation model of a JPM coupled to a readout resonator.
///
/// # Examples
///
/// ```
/// use qisim_quantum::jpm::Jpm;
///
/// let jpm = Jpm::standard();
/// // Bright state (10 photons) tunnels quickly; dark state barely at all.
/// let p_bright = jpm.tunneling_probability(10.0, 12.8);
/// let p_dark = jpm.tunneling_probability(0.0, 12.8);
/// assert!(p_bright > 0.99);
/// assert!(p_dark < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jpm {
    /// Per-photon bright tunneling rate in 1/ns.
    pub bright_rate: f64,
    /// Photon-independent dark tunneling rate in 1/ns.
    pub dark_rate: f64,
}

impl Jpm {
    /// Parameters reproducing the paper's JPM-tunneling operating point:
    /// ≥99 % bright-state capture within the 12.8 ns tunneling window with
    /// sub-1 % dark counts.
    pub fn standard() -> Self {
        Jpm { bright_rate: 0.040, dark_rate: 5.0e-4 }
    }

    /// Tunneling probability for constant mean photon number `n_bar` over a
    /// window of `duration_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bar` or `duration_ns` is negative.
    pub fn tunneling_probability(&self, n_bar: f64, duration_ns: f64) -> f64 {
        assert!(n_bar >= 0.0 && duration_ns >= 0.0, "inputs must be non-negative");
        let gamma = self.dark_rate + n_bar * self.bright_rate;
        1.0 - (-gamma * duration_ns).exp()
    }

    /// Tunneling probability for a time-varying photon population sampled
    /// uniformly over the window (trapezoid integration of the rate).
    ///
    /// # Panics
    ///
    /// Panics if `photons` has fewer than two samples.
    pub fn tunneling_probability_traj(&self, photons: &[f64], duration_ns: f64) -> f64 {
        assert!(photons.len() >= 2, "need at least two photon samples");
        let dt = duration_ns / (photons.len() - 1) as f64;
        let mut integral = 0.0;
        for w in photons.windows(2) {
            let g0 = self.dark_rate + w[0] * self.bright_rate;
            let g1 = self.dark_rate + w[1] * self.bright_rate;
            integral += 0.5 * (g0 + g1) * dt;
        }
        1.0 - (-integral).exp()
    }

    /// Readout assignment error when the bright state carries `n_bright`
    /// photons and the dark state `n_dark` over a window of `duration_ns`:
    /// mean of the missed-bright and false-dark probabilities.
    pub fn assignment_error(&self, n_bright: f64, n_dark: f64, duration_ns: f64) -> f64 {
        let miss = 1.0 - self.tunneling_probability(n_bright, duration_ns);
        let false_click = self.tunneling_probability(n_dark, duration_ns);
        0.5 * (miss + false_click)
    }

    /// Window length that minimizes [`Jpm::assignment_error`] via golden
    /// section search over `(0, max_ns]`.
    pub fn optimal_window_ns(&self, n_bright: f64, n_dark: f64, max_ns: f64) -> f64 {
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let (mut a, mut b) = (1e-3, max_ns);
        for _ in 0..80 {
            let c = b - phi * (b - a);
            let d = a + phi * (b - a);
            if self.assignment_error(n_bright, n_dark, c)
                < self.assignment_error(n_bright, n_dark, d)
            {
                b = d;
            } else {
                a = c;
            }
        }
        0.5 * (a + b)
    }

    /// Lindblad cross-check of the rate model on a truncated Fock space.
    ///
    /// Builds `resonator(fock_levels) ⊗ JPM{untunneled, tunneled}` with a
    /// photon-number-conditioned tunneling collapse and returns the tunneled
    /// population after `duration_ns`, starting from a coherent-state photon
    /// distribution with mean `n_bar`.
    pub fn lindblad_tunneled_population(
        &self,
        n_bar: f64,
        fock_levels: usize,
        duration_ns: f64,
        steps: usize,
    ) -> f64 {
        assert!(fock_levels >= 2, "need at least two Fock levels");
        let dim = fock_levels * 2;

        // Initial state: Poisson photon distribution ⊗ |untunneled>.
        let mut rho0 = CMatrix::zeros(dim, dim);
        let mut pn = Vec::with_capacity(fock_levels);
        let mut acc = 0.0;
        for k in 0..fock_levels {
            let log_p = -n_bar + k as f64 * n_bar.max(1e-300).ln() - ln_factorial(k);
            let p = if n_bar == 0.0 {
                if k == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                log_p.exp()
            };
            pn.push(p);
            acc += p;
        }
        for (k, p) in pn.iter().enumerate() {
            rho0[(k * 2, k * 2)] = C64::from(p / acc);
        }

        // Collapse: |n, untunneled> -> |n, tunneled> at rate Γd + n·Γb.
        // Encoded as one operator per Fock level.
        let mut collapses = Vec::with_capacity(fock_levels);
        for k in 0..fock_levels {
            let mut op = CMatrix::zeros(dim, dim);
            op[(k * 2 + 1, k * 2)] = C64::ONE;
            let rate = self.dark_rate + k as f64 * self.bright_rate;
            collapses.push(Collapse::new(op, rate));
        }

        let rho = lindblad_evolve(
            &rho0,
            |_| CMatrix::zeros(dim, dim),
            &collapses,
            0.0,
            duration_ns,
            steps,
        );
        (0..fock_levels).map(|k| rho[(k * 2 + 1, k * 2 + 1)].re).sum()
    }
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|k| (k as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bright_tunnels_dark_does_not() {
        let j = Jpm::standard();
        assert!(j.tunneling_probability(10.0, 12.8) > 0.99);
        assert!(j.tunneling_probability(0.0, 12.8) < 0.01);
    }

    #[test]
    fn probability_is_monotone_in_time_and_photons() {
        let j = Jpm::standard();
        let mut last = 0.0;
        for t in [1.0, 5.0, 10.0, 50.0] {
            let p = j.tunneling_probability(3.0, t);
            assert!(p >= last);
            last = p;
        }
        let mut last = 0.0;
        for n in [0.0, 1.0, 5.0, 20.0] {
            let p = j.tunneling_probability(n, 10.0);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn trajectory_rate_matches_constant_rate() {
        let j = Jpm::standard();
        let photons = vec![4.0; 33];
        let p_traj = j.tunneling_probability_traj(&photons, 12.8);
        let p_const = j.tunneling_probability(4.0, 12.8);
        assert!((p_traj - p_const).abs() < 1e-12);
    }

    #[test]
    fn assignment_error_has_interior_optimum() {
        let j = Jpm::standard();
        let best = j.optimal_window_ns(10.0, 0.0, 100.0);
        let e_best = j.assignment_error(10.0, 0.0, best);
        assert!(e_best < j.assignment_error(10.0, 0.0, 1.0));
        assert!(e_best < j.assignment_error(10.0, 0.0, 100.0));
    }

    #[test]
    fn lindblad_matches_rate_equation() {
        let j = Jpm::standard();
        let n_bar = 3.0;
        let t = 10.0;
        let p_rate = j.tunneling_probability(n_bar, t);
        let p_lindblad = j.lindblad_tunneled_population(n_bar, 12, t, 400);
        // The Lindblad model averages over the Poisson distribution, which
        // only approximately matches the mean-rate formula; they should agree
        // to a few percent at these parameters.
        assert!((p_rate - p_lindblad).abs() < 0.08, "rate {p_rate} vs lindblad {p_lindblad}");
    }

    #[test]
    fn zero_photon_lindblad_gives_dark_rate() {
        let j = Jpm::standard();
        let p = j.lindblad_tunneled_population(0.0, 4, 12.8, 200);
        let expected = 1.0 - (-j.dark_rate * 12.8).exp();
        assert!((p - expected).abs() < 1e-6);
    }
}
