//! Dense complex matrices and standard quantum gate constructors.
//!
//! [`CMatrix`] is a row-major, dynamically-sized dense matrix over [`C64`].
//! Everything QIsim integrates — transmon drives, coupled-qubit flux pulses,
//! resonator–JPM master equations — lives in Hilbert spaces of dimension
//! ≤ ~64, so a straightforward dense representation is both simple and fast.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qisim_quantum::{C64, CMatrix};
///
/// let x = CMatrix::pauli_x();
/// let y = CMatrix::pauli_y();
/// let z = CMatrix::pauli_z();
/// // XY = iZ
/// let xy = &x * &y;
/// let iz = z.scaled(C64::I);
/// assert!(xy.approx_eq(&iz, 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix { rows, cols, data: vec![C64::ZERO; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        CMatrix { rows: rows.len(), cols, data }
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a perfect square.
    pub fn from_flat(data: &[C64]) -> Self {
        let n = (data.len() as f64).sqrt().round() as usize;
        assert_eq!(n * n, data.len(), "flat slice is not square");
        CMatrix { rows: n, cols: n, data: data.to_vec() }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let mut m = CMatrix::zeros(entries.len(), entries.len());
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dimension of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn dim(&self) -> usize {
        assert_eq!(self.rows, self.cols, "dim() requires a square matrix");
        self.rows
    }

    /// Raw row-major data view.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Conjugate transpose (dagger).
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        let n = self.dim();
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Elementwise scaling by a complex factor.
    pub fn scaled(&self, k: C64) -> CMatrix {
        let data = self.data.iter().map(|&z| z * k).collect();
        CMatrix { rows: self.rows, cols: self.cols, data }
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                if a == C64::ZERO {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![C64::ZERO; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(v.iter()) {
                acc = a.mul_add(*b, acc);
            }
            *slot = acc;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum elementwise absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max)
    }

    /// True when every element is within `tol` of `other`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }

    /// True when `self * self.adjoint()` is within `tol` of the identity.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        (self * &self.adjoint()).approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// True when the matrix equals its own adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.adjoint(), tol)
    }

    /// Commutator `[self, other] = self*other - other*self`.
    pub fn commutator(&self, other: &CMatrix) -> CMatrix {
        &(self * other) - &(other * self)
    }

    // ---- standard gates ---------------------------------------------------

    /// Pauli X.
    pub fn pauli_x() -> CMatrix {
        CMatrix::from_flat(&[C64::ZERO, C64::ONE, C64::ONE, C64::ZERO])
    }

    /// Pauli Y.
    pub fn pauli_y() -> CMatrix {
        CMatrix::from_flat(&[C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    /// Pauli Z.
    pub fn pauli_z() -> CMatrix {
        CMatrix::from_flat(&[C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE])
    }

    /// Hadamard gate.
    pub fn hadamard() -> CMatrix {
        let s = C64::from(std::f64::consts::FRAC_1_SQRT_2);
        CMatrix::from_flat(&[s, s, s, -s])
    }

    /// Rotation about the x axis by `theta`.
    pub fn rx(theta: f64) -> CMatrix {
        let c = C64::from((theta / 2.0).cos());
        let s = -C64::I * (theta / 2.0).sin();
        CMatrix::from_flat(&[c, s, s, c])
    }

    /// Rotation about the y axis by `theta`.
    pub fn ry(theta: f64) -> CMatrix {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        CMatrix::from_flat(&[C64::from(c), C64::from(-s), C64::from(s), C64::from(c)])
    }

    /// Rotation about the z axis by `theta`.
    pub fn rz(theta: f64) -> CMatrix {
        CMatrix::diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)])
    }

    /// Controlled-Z on two qubits (4 x 4).
    pub fn cz() -> CMatrix {
        CMatrix::diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE])
    }

    /// Controlled-X (CNOT) with gate qubit 0 — the *low* bit of the 2-bit
    /// basis index — as control (little-endian convention, 4 x 4).
    pub fn cnot() -> CMatrix {
        let mut m = CMatrix::identity(4);
        m[(1, 1)] = C64::ZERO;
        m[(3, 3)] = C64::ZERO;
        m[(1, 3)] = C64::ONE;
        m[(3, 1)] = C64::ONE;
        m
    }

    /// Annihilation operator truncated to `n` levels.
    pub fn annihilation(n: usize) -> CMatrix {
        let mut a = CMatrix::zeros(n, n);
        for k in 1..n {
            a[(k - 1, k)] = C64::from((k as f64).sqrt());
        }
        a
    }

    /// Creation operator truncated to `n` levels.
    pub fn creation(n: usize) -> CMatrix {
        CMatrix::annihilation(n).adjoint()
    }

    /// Number operator truncated to `n` levels.
    pub fn number(n: usize) -> CMatrix {
        CMatrix::diag(&(0..n).map(|k| C64::from(k as f64)).collect::<Vec<_>>())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in add");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a + *b).collect();
        CMatrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in sub");
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| *a - *b).collect();
        CMatrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in mul");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == C64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = a.mul_add(rhs[(k, c)], out[(r, c)]);
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_is_multiplicative_identity() {
        let h = CMatrix::hadamard();
        let i = CMatrix::identity(2);
        assert!((&h * &i).approx_eq(&h, 1e-14));
        assert!((&i * &h).approx_eq(&h, 1e-14));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [CMatrix::pauli_x(), CMatrix::pauli_y(), CMatrix::pauli_z()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
            assert!((m.trace()).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = CMatrix::hadamard();
        assert!((&h * &h).approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn rotation_composition() {
        // Rz(a) * Rz(b) = Rz(a + b)
        let a = 0.3;
        let b = 1.1;
        let lhs = &CMatrix::rz(a) * &CMatrix::rz(b);
        assert!(lhs.approx_eq(&CMatrix::rz(a + b), 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let rx = CMatrix::rx(PI);
        let x = CMatrix::pauli_x().scaled(-C64::I);
        assert!(rx.approx_eq(&x, 1e-12));
    }

    #[test]
    fn ry_half_pi_moves_zero_to_plus() {
        let ry = CMatrix::ry(PI / 2.0);
        let v = ry.mul_vec(&[C64::ONE, C64::ZERO]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((v[0] - C64::from(s)).abs() < 1e-12);
        assert!((v[1] - C64::from(s)).abs() < 1e-12);
    }

    #[test]
    fn kron_shapes_and_values() {
        let z = CMatrix::pauli_z();
        let i = CMatrix::identity(2);
        let zi = z.kron(&i);
        assert_eq!(zi.rows(), 4);
        assert_eq!(zi[(0, 0)], C64::ONE);
        assert_eq!(zi[(3, 3)], -C64::ONE);
    }

    #[test]
    fn cnot_flips_high_bit_when_control_set() {
        let c = CMatrix::cnot();
        let mut v = vec![C64::ZERO; 4];
        v[1] = C64::ONE; // control (low bit) = 1
        let out = c.mul_vec(&v);
        assert!((out[3] - C64::ONE).abs() < 1e-12);
        // Control clear: nothing happens.
        let mut v = vec![C64::ZERO; 4];
        v[2] = C64::ONE;
        let out = c.mul_vec(&v);
        assert!((out[2] - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn ladder_operator_commutator() {
        // [a, a†] = 1 on the untruncated part of the space.
        let n = 8;
        let a = CMatrix::annihilation(n);
        let adag = CMatrix::creation(n);
        let comm = a.commutator(&adag);
        for k in 0..n - 1 {
            assert!((comm[(k, k)] - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn number_operator_from_ladders() {
        let n = 6;
        let a = CMatrix::annihilation(n);
        let num = &CMatrix::creation(n) * &a;
        assert!(num.approx_eq(&CMatrix::number(n), 1e-12));
    }

    #[test]
    fn trace_of_product_cyclic() {
        let a = CMatrix::rx(0.3);
        let b = CMatrix::ry(0.8);
        let t1 = (&a * &b).trace();
        let t2 = (&b * &a).trace();
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_add_panics() {
        let _ = &CMatrix::zeros(2, 2) + &CMatrix::zeros(3, 3);
    }
}
