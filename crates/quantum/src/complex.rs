//! Double-precision complex arithmetic.
//!
//! The whole QIsim quantum substrate is built on [`C64`], a minimal but
//! complete complex-number type. We implement it from scratch (rather than
//! pulling `num-complex`) so the workspace stays within its small offline
//! dependency set and so the hot loops (Hamiltonian integration, statevector
//! updates) stay transparent to the optimizer.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qisim_quantum::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((z - 2.0 * i).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{i theta}`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus, cheaper than [`C64::abs`] when comparing magnitudes.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, matching IEEE-754
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`, one rounding contour per component.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        C64::new(self.re * b.re - self.im * b.im + c.re, self.re * b.im + self.im * b.re + c.im)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::new(re, 0.0)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for C64 {
    type Output = C64;
    // Division via the reciprocal is the intended formula, not a typo'd
    // operator: z/w = z·(1/w).
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        rhs + self
    }
}

impl Sub<C64> for f64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        assert_eq!(a + b, C64::new(4.0, -2.0));
        assert_eq!(a - b, C64::new(-2.0, 6.0));
        assert_eq!(a * b, C64::new(11.0, 2.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn euler_identity() {
        let z = (C64::I * PI).exp();
        assert!((z + C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = C64::new(1.5, -0.5);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj() - C64::from(a.norm_sqr())).abs() < 1e-12);
    }

    #[test]
    fn recip_inverts() {
        let a = C64::new(0.3, -1.7);
        assert!((a * a.recip() - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn mixed_real_ops() {
        let a = C64::new(1.0, 1.0);
        assert_eq!(a * 2.0, C64::new(2.0, 2.0));
        assert_eq!(2.0 * a, C64::new(2.0, 2.0));
        assert_eq!(a + 1.0, C64::new(2.0, 1.0));
        assert_eq!(1.0 - a, C64::new(0.0, -1.0));
        assert_eq!(a / 2.0, C64::new(0.5, 0.5));
    }

    #[test]
    fn sum_of_unit_roots_is_zero() {
        let n = 7;
        let total: C64 = (0..n).map(|k| C64::cis(2.0 * PI * k as f64 / n as f64)).sum();
        assert!(total.abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.2, -0.3);
        let b = C64::new(-2.0, 0.5);
        let c = C64::new(0.1, 0.9);
        assert!((a.mul_add(b, c) - (a * b + c)).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
