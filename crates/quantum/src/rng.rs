//! A small deterministic PRNG, replacing the `rand` crate (the build
//! environment is offline, and the Monte-Carlo estimators only need a
//! fast, seedable, statistically decent generator — not cryptography).
//!
//! The generator is Vigna's **xorshift64\*** (a 64-bit xorshift scrambled
//! by a multiplicative constant; period 2⁶⁴−1, passes BigCrush except
//! MatrixRank). Seeding runs the seed through one SplitMix64 step so that
//! small consecutive seeds (0, 1, 2, …) still start in well-mixed states.

/// Minimal random-number interface used across the QIsim crates.
///
/// The API is deliberately explicit (`gen_f64`, `gen_bool`, …) rather
/// than generic over output types; every call site knows exactly what it
/// is sampling.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // Top 53 bits -> [0, 1). 2^-53 spacing, never returns 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    fn gen_open01(&mut self) -> f64 {
        1.0 - self.gen_f64()
    }

    /// A uniform bool.
    #[inline]
    fn gen_bool(&mut self) -> bool {
        // Use a high bit; the low bits of some generators are weaker.
        self.next_u64() >> 63 != 0
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a positive bound");
        // Debiased multiply-shift (Lemire): rejection only in the tiny
        // biased zone, so the common path is one multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The SplitMix64 "gamma" increment (the golden ratio in 64-bit fixed
/// point; odd, so the state walk covers the full 2⁶⁴ cycle).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Vigna/Steele's **SplitMix64**: a counter-based generator whose state
/// simply steps by the golden-ratio gamma (`0x9E37_79B9_7F4A_7C15`) and
/// whose output is a strong 64-bit mix of the counter. Two jobs here:
///
/// 1. seeding — one SplitMix64 output turns any seed (even 0, 1, 2, …)
///    into a well-mixed [`Xorshift64Star`] state;
/// 2. **stream splitting** — because the state advances additively,
///    stream `i` of a base seed is just `seed + i·gamma`, giving O(1)
///    access to any number of decorrelated substreams. The parallel
///    Monte-Carlo engine derives one stream per trial chunk this way, so
///    results are reproducible at any thread count.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Rng, SplitMix64};
///
/// let mut sm = SplitMix64::new(0);
/// let (a, b) = (sm.next_u64(), sm.next_u64());
/// assert_ne!(a, b); // consecutive counters mix to unrelated outputs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose first output mixes `seed + gamma`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xorshift64\* generator.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Rng, Xorshift64Star};
///
/// let mut a = Xorshift64Star::seed_from_u64(7);
/// let mut b = Xorshift64Star::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let u = a.gen_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One SplitMix64 step decorrelates consecutive seeds and maps the
        // forbidden all-zeros state away.
        let z = SplitMix64::new(seed).next_u64();
        Xorshift64Star { state: if z == 0 { GOLDEN_GAMMA } else { z } }
    }

    /// The `stream`-th independent generator derived from `seed`: stream
    /// splitting à la SplitMix64, where substream `i` seeds from the state
    /// `seed + i·gamma` in O(1). Distinct streams of one seed are as
    /// decorrelated as distinct seeds.
    ///
    /// This is the reproducibility primitive of the parallel Monte-Carlo
    /// engine: work is cut into fixed chunks, chunk `i` always samples
    /// from `stream(seed, i)`, and the aggregate is therefore identical
    /// whether 1 or 64 threads ran the chunks.
    ///
    /// # Examples
    ///
    /// ```
    /// use qisim_quantum::rng::{Rng, Xorshift64Star};
    ///
    /// let mut s0 = Xorshift64Star::stream(42, 0);
    /// let mut s1 = Xorshift64Star::stream(42, 1);
    /// assert_ne!(s0.next_u64(), s1.next_u64());
    /// assert_eq!(
    ///     Xorshift64Star::stream(42, 1),
    ///     { s1 = Xorshift64Star::stream(42, 1); s1 } // reproducible
    /// );
    /// ```
    pub fn stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(seed.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)))
    }
}

impl Rng for Xorshift64Star {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A geometric gap sampler: how many i.i.d. Bernoulli(`p`) trials fail
/// before the next success.
///
/// Sampling a run of `n` Bernoulli flags one uniform draw at a time
/// costs `n` draws; inverting the geometric CDF costs one draw **per
/// success** instead (`gap = ⌊ln U / ln(1−p)⌋`, `U` uniform in `(0, 1]`).
/// At the physical error rates the surface-code Monte-Carlo engine cares
/// about (`p ≈ 10⁻³`), that is a ~1000× reduction in RNG traffic. The
/// inversion is the exact geometric law — not a Poisson or other
/// small-`p` approximation — so it is valid at any `p` in `(0, 1)`.
///
/// Degenerate rates are the *caller's* fast path (`p = 0`: no successes,
/// sample nothing; `p = 1`: every trial succeeds, no randomness needed),
/// so the constructor rejects them.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Geometric, Xorshift64Star};
///
/// let geo = Geometric::new(0.25);
/// let mut rng = Xorshift64Star::seed_from_u64(9);
/// let gap = geo.sample(&mut rng); // failures before the next success
/// let again = {
///     let mut rng = Xorshift64Star::seed_from_u64(9);
///     geo.sample(&mut rng)
/// };
/// assert_eq!(gap, again); // one draw, deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    /// `1 / ln(1 − p)` (negative), precomputed so sampling is one draw,
    /// one `ln`, one multiply.
    inv_ln_q: f64,
}

impl Geometric {
    /// Builds a sampler for success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` (the degenerate rates need no sampler).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "geometric sampler needs 0 < p < 1, got {p}");
        Geometric { inv_ln_q: 1.0 / (1.0 - p).ln() }
    }

    /// The number of failures before the next success (possibly 0).
    ///
    /// Consumes exactly one `u64` from `rng`. The result saturates at
    /// `u64::MAX` for astronomically long gaps (`as`-casts from `f64`
    /// saturate), which callers treat as "past the end of the run".
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // U in (0, 1] keeps ln finite; U = 1 maps to gap 0.
        (rng.gen_open01().ln() * self.inv_ln_q) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds_distinct_for_different() {
        let a: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64Star::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut r = Xorshift64Star::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn open01_never_returns_zero() {
        let mut r = Xorshift64Star::seed_from_u64(2);
        for _ in 0..100_000 {
            let u = r.gen_open01();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn gen_below_is_unbiased_enough() {
        let mut r = Xorshift64Star::seed_from_u64(3);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[r.gen_below(3) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 3.0;
            assert!((c as f64 - expected).abs() < 5.0 * expected.sqrt(), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Xorshift64Star::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4600..5400).contains(&trues), "trues {trues}");
    }

    #[test]
    fn trait_object_and_reborrow_work() {
        fn take_dyn(r: &mut dyn Rng) -> u64 {
            r.next_u64()
        }
        fn take_generic<R: Rng>(mut r: R) -> f64 {
            r.gen_f64()
        }
        let mut r = Xorshift64Star::seed_from_u64(5);
        let _ = take_dyn(&mut r);
        let _ = take_generic(&mut r); // &mut impl passes by reborrow
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn gen_below_zero_panics() {
        let mut r = Xorshift64Star::seed_from_u64(6);
        let _ = r.gen_below(0);
    }

    #[test]
    fn splitmix_is_deterministic_and_well_mixed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        // Consecutive outputs differ in roughly half their bits.
        for w in a.windows(2) {
            let flips = (w[0] ^ w[1]).count_ones();
            assert!((16..=48).contains(&flips), "flips {flips}");
        }
    }

    #[test]
    fn geometric_matches_bernoulli_scan_in_distribution() {
        // Inverting the geometric CDF must reproduce the per-trial
        // Bernoulli law: compare the mean gap against (1-p)/p.
        for p in [0.01f64, 0.1, 0.5] {
            let geo = Geometric::new(p);
            let mut rng = Xorshift64Star::seed_from_u64(0xBEEF);
            let n = 200_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += geo.sample(&mut rng) as f64;
            }
            let mean = sum / n as f64;
            let expect = (1.0 - p) / p;
            let sigma = ((1.0 - p) / (p * p) / n as f64).sqrt();
            assert!((mean - expect).abs() < 6.0 * sigma, "p={p}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn geometric_is_deterministic_and_one_draw() {
        let geo = Geometric::new(0.03);
        let mut a = Xorshift64Star::seed_from_u64(5);
        let mut b = Xorshift64Star::seed_from_u64(5);
        let gap = geo.sample(&mut a);
        assert_eq!(gap, geo.sample(&mut b));
        // Exactly one u64 consumed: the generators stay in lock step.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn geometric_rejects_degenerate_rates() {
        let _ = Geometric::new(0.0);
    }

    #[test]
    fn stream_zero_matches_plain_seeding() {
        assert_eq!(Xorshift64Star::stream(42, 0), Xorshift64Star::seed_from_u64(42));
    }

    #[test]
    fn streams_are_reproducible_and_decorrelated() {
        let outputs: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                let mut r = Xorshift64Star::stream(7, i);
                (0..4).map(|_| r.next_u64()).collect()
            })
            .collect();
        for (i, a) in outputs.iter().enumerate() {
            assert_eq!(*a, {
                let mut r = Xorshift64Star::stream(7, i as u64);
                (0..4).map(|_| r.next_u64()).collect::<Vec<_>>()
            });
            for b in &outputs[i + 1..] {
                assert_ne!(a, b, "streams must not collide");
            }
        }
        // Stream mean still looks uniform.
        let mut sum = 0.0;
        let mut r = Xorshift64Star::stream(7, 3);
        for _ in 0..10_000 {
            sum += r.gen_f64();
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
