//! A small deterministic PRNG, replacing the `rand` crate (the build
//! environment is offline, and the Monte-Carlo estimators only need a
//! fast, seedable, statistically decent generator — not cryptography).
//!
//! The generator is Vigna's **xorshift64\*** (a 64-bit xorshift scrambled
//! by a multiplicative constant; period 2⁶⁴−1, passes BigCrush except
//! MatrixRank). Seeding runs the seed through one SplitMix64 step so that
//! small consecutive seeds (0, 1, 2, …) still start in well-mixed states.

/// Minimal random-number interface used across the QIsim crates.
///
/// The API is deliberately explicit (`gen_f64`, `gen_bool`, …) rather
/// than generic over output types; every call site knows exactly what it
/// is sampling.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // Top 53 bits -> [0, 1). 2^-53 spacing, never returns 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    fn gen_open01(&mut self) -> f64 {
        1.0 - self.gen_f64()
    }

    /// The raw 53-bit mantissa behind one uniform draw: [`Self::gen_f64`]
    /// is exactly `mantissa · 2⁻⁵³` and [`Self::gen_open01`] exactly
    /// `1 − mantissa · 2⁻⁵³` (both exact in `f64`), so integer
    /// comparisons on the mantissa can stand in for float comparisons on
    /// the uniform, draw for draw. Consumes one `u64`, like `gen_f64`.
    #[inline]
    fn gen_mantissa53(&mut self) -> u64 {
        self.next_u64() >> 11
    }

    /// A uniform bool.
    #[inline]
    fn gen_bool(&mut self) -> bool {
        // Use a high bit; the low bits of some generators are weaker.
        self.next_u64() >> 63 != 0
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a positive bound");
        // Debiased multiply-shift (Lemire): rejection only in the tiny
        // biased zone, so the common path is one multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The SplitMix64 "gamma" increment (the golden ratio in 64-bit fixed
/// point; odd, so the state walk covers the full 2⁶⁴ cycle).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Vigna/Steele's **SplitMix64**: a counter-based generator whose state
/// simply steps by the golden-ratio gamma (`0x9E37_79B9_7F4A_7C15`) and
/// whose output is a strong 64-bit mix of the counter. Two jobs here:
///
/// 1. seeding — one SplitMix64 output turns any seed (even 0, 1, 2, …)
///    into a well-mixed [`Xorshift64Star`] state;
/// 2. **stream splitting** — because the state advances additively,
///    stream `i` of a base seed is just `seed + i·gamma`, giving O(1)
///    access to any number of decorrelated substreams. The parallel
///    Monte-Carlo engine derives one stream per trial chunk this way, so
///    results are reproducible at any thread count.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Rng, SplitMix64};
///
/// let mut sm = SplitMix64::new(0);
/// let (a, b) = (sm.next_u64(), sm.next_u64());
/// assert_ne!(a, b); // consecutive counters mix to unrelated outputs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose first output mixes `seed + gamma`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xorshift64\* generator.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Rng, Xorshift64Star};
///
/// let mut a = Xorshift64Star::seed_from_u64(7);
/// let mut b = Xorshift64Star::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let u = a.gen_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One SplitMix64 step decorrelates consecutive seeds and maps the
        // forbidden all-zeros state away.
        let z = SplitMix64::new(seed).next_u64();
        Xorshift64Star { state: if z == 0 { GOLDEN_GAMMA } else { z } }
    }

    /// The `stream`-th independent generator derived from `seed`: stream
    /// splitting à la SplitMix64, where substream `i` seeds from the state
    /// `seed + i·gamma` in O(1). Distinct streams of one seed are as
    /// decorrelated as distinct seeds.
    ///
    /// This is the reproducibility primitive of the parallel Monte-Carlo
    /// engine: work is cut into fixed chunks, chunk `i` always samples
    /// from `stream(seed, i)`, and the aggregate is therefore identical
    /// whether 1 or 64 threads ran the chunks.
    ///
    /// # Examples
    ///
    /// ```
    /// use qisim_quantum::rng::{Rng, Xorshift64Star};
    ///
    /// let mut s0 = Xorshift64Star::stream(42, 0);
    /// let mut s1 = Xorshift64Star::stream(42, 1);
    /// assert_ne!(s0.next_u64(), s1.next_u64());
    /// assert_eq!(
    ///     Xorshift64Star::stream(42, 1),
    ///     { s1 = Xorshift64Star::stream(42, 1); s1 } // reproducible
    /// );
    /// ```
    pub fn stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(seed.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// 64 consecutive [`Self::stream`]s starting at `first_stream`: one
    /// generator per *lane* of a bit-sliced 64-trial word. Lane `i` is
    /// exactly `stream(seed, first_stream + i)`, so a bit-sliced kernel
    /// and 64 independent scalar runs fed these streams consume the same
    /// randomness draw for draw — the reference-equivalence contract of
    /// the sliced Monte-Carlo engine.
    ///
    /// # Examples
    ///
    /// ```
    /// use qisim_quantum::rng::Xorshift64Star;
    ///
    /// let lanes = Xorshift64Star::streams64(42, 128);
    /// assert_eq!(lanes[3], Xorshift64Star::stream(42, 131));
    /// ```
    pub fn streams64(seed: u64, first_stream: u64) -> [Self; 64] {
        std::array::from_fn(|i| Self::stream(seed, first_stream.wrapping_add(i as u64)))
    }
}

impl Rng for Xorshift64Star {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A geometric gap sampler: how many i.i.d. Bernoulli(`p`) trials fail
/// before the next success.
///
/// Sampling a run of `n` Bernoulli flags one uniform draw at a time
/// costs `n` draws; inverting the geometric CDF costs one draw **per
/// success** instead (`gap = ⌊ln U / ln(1−p)⌋`, `U` uniform in `(0, 1]`).
/// At the physical error rates the surface-code Monte-Carlo engine cares
/// about (`p ≈ 10⁻³`), that is a ~1000× reduction in RNG traffic. The
/// inversion is the exact geometric law — not a Poisson or other
/// small-`p` approximation — so it is valid at any `p` in `(0, 1)`.
///
/// Degenerate rates are the *caller's* fast path (`p = 0`: no successes,
/// sample nothing; `p = 1`: every trial succeeds, no randomness needed),
/// so the constructor rejects them.
///
/// # Examples
///
/// ```
/// use qisim_quantum::rng::{Geometric, Xorshift64Star};
///
/// let geo = Geometric::new(0.25);
/// let mut rng = Xorshift64Star::seed_from_u64(9);
/// let gap = geo.sample(&mut rng); // failures before the next success
/// let again = {
///     let mut rng = Xorshift64Star::seed_from_u64(9);
///     geo.sample(&mut rng)
/// };
/// assert_eq!(gap, again); // one draw, deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    /// `1 / ln(1 − p)` (negative), precomputed so sampling is one draw,
    /// one `ln`, one multiply.
    inv_ln_q: f64,
}

impl Geometric {
    /// Builds a sampler for success probability `p`.
    ///
    /// Valid at **any** `p` strictly between 0 and 1, including subnormal
    /// `p`: when `p` is so small that `1 − p` rounds to `1.0` (so the
    /// naive `ln(1 − p)` would collapse to zero and every gap to 0), the
    /// slope is recomputed through [`f64::ln_1p`], and [`Self::sample`]
    /// saturates at `u64::MAX` — "past the end of any run" — instead of
    /// overflowing or flipping everything. For every `p` where the naive
    /// logarithm is nonzero the stored slope (and therefore the sampled
    /// gap sequence) is bit-identical to what it has always been.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` (the degenerate rates `p = 0` — nothing
    /// ever succeeds — and `p = 1` — everything succeeds — need no
    /// sampler and are the caller's fast path). NaN fails the range check
    /// and panics too.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "geometric sampler needs 0 < p < 1, got {p}");
        let ln_q = (1.0 - p).ln();
        // Subnormal/tiny p underflows `1 - p` to exactly 1.0; ln_1p keeps
        // the slope finite (≈ −1/p) so gaps saturate instead of zeroing.
        let inv_ln_q = if ln_q == 0.0 { 1.0 / (-p).ln_1p() } else { 1.0 / ln_q };
        Geometric { inv_ln_q }
    }

    /// The number of failures before the next success (possibly 0).
    ///
    /// Consumes exactly one `u64` from `rng`. The result saturates at
    /// `u64::MAX` for astronomically long gaps (`as`-casts from `f64`
    /// saturate), which callers treat as "past the end of the run".
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // U in (0, 1] keeps ln finite; U = 1 maps to gap 0.
        (rng.gen_open01().ln() * self.inv_ln_q) as u64
    }

    /// Batched skip over a run of `n` Bernoulli trials: feeds every
    /// success position (strictly ascending, in `0..n`) to `place` and
    /// returns whether anything was placed.
    ///
    /// One [`Self::sample`] draw per success plus one terminating draw —
    /// never one per trial — and the saturating position arithmetic means
    /// the walk can neither overflow nor spin, even at subnormal `p`
    /// where every gap is `u64::MAX`. Both the scalar and the bit-sliced
    /// Monte-Carlo kernels place errors through this one loop, so their
    /// RNG draw sequences agree by construction.
    #[inline]
    pub fn positions<R: Rng, F: FnMut(usize)>(&self, n: usize, rng: &mut R, mut place: F) -> bool {
        let mut pos = self.sample(rng);
        let any = pos < n as u64;
        while pos < n as u64 {
            place(pos as usize);
            // Saturating: a gap of u64::MAX means "past the end".
            pos = pos.saturating_add(1).saturating_add(self.sample(rng));
        }
        any
    }

    /// A conservative first-draw threshold for
    /// [`Self::positions_fast_empty`] over a run of `n` trials: every
    /// uniform draw `U` at or below it provably makes the first gap
    /// `≥ n`, so an all-survive run needs no logarithm at all.
    pub fn empty_run_threshold(&self, n: usize) -> f64 {
        // The first gap ln(U)·inv_ln_q is decreasing in U and crosses n
        // at U = qⁿ = exp(n·ln q). The relative margin of 1e-6 dwarfs
        // the few-ulp rounding of recip/exp/ln (≲ n·2⁻⁵⁰), so the
        // shortcut can never disagree with the exact walk — draws inside
        // the margin merely take the exact path.
        ((n as f64) * self.inv_ln_q.recip()).exp() * (1.0 - 1e-6)
    }

    /// [`Self::empty_run_threshold`] in raw-mantissa space: a draw whose
    /// [`Rng::gen_mantissa53`] value is **at least** this gate provably
    /// survives all `n` trials. `gen_open01` is exactly `1 − m·2⁻⁵³`, so
    /// `m ≥ gate ⟹ U ≤ threshold`; the trailing `+1` eats the `ceil`
    /// rounding, erring — like the threshold's margin — toward sending
    /// borderline draws down the exact path. A gate above `2⁵³ − 1`
    /// (unreachable by any mantissa) simply disables the shortcut.
    pub fn empty_run_gate(&self, n: usize) -> u64 {
        let scale = (1u64 << 53) as f64;
        (((1.0 - self.empty_run_threshold(n)) * scale).ceil() as u64).saturating_add(1)
    }

    /// [`Self::positions`] with a fast path for gap-clears-the-run
    /// draws: any draw at or below `empty_threshold` (from
    /// [`Self::empty_run_threshold`] for the **same** `n`) provably has
    /// gap `≥ n`, so the first one resolves "no error anywhere" and a
    /// continuation one resolves "past the end of the run" — both
    /// without a `ln`. (For continuation draws the bound is loose —
    /// `n` exceeds whatever remains of the run — but loose in the
    /// direction that only sends borderline draws down the exact path.)
    ///
    /// Draw-for-draw identical to `positions` — it consumes the same
    /// uniforms from `rng` and feeds `place` the same positions — which
    /// is what lets the bit-sliced Monte-Carlo kernel use it while
    /// staying bit-equal to the scalar reference. In the supremacy
    /// regime (`n·p ≪ 1`) almost every run resolves on one comparison.
    #[inline]
    pub fn positions_fast_empty<R: Rng, F: FnMut(usize)>(
        &self,
        n: usize,
        empty_threshold: f64,
        rng: &mut R,
        place: F,
    ) -> bool {
        let u = rng.gen_open01();
        if u <= empty_threshold {
            return false;
        }
        self.positions_from_first(n, u, empty_threshold, rng, place)
    }

    /// The tail of [`Self::positions_fast_empty`] once the first uniform
    /// is already in hand (say, drawn via [`Rng::gen_mantissa53`] and
    /// screened against [`Self::empty_run_gate`]): identical placements,
    /// and identical draws from `rng` from here on. `first_u` must be
    /// the exact `gen_open01` value of the consumed draw — see
    /// [`open01_from_mantissa53`] — and `empty_threshold` must come from
    /// [`Self::empty_run_threshold`] for the same `n`.
    #[inline]
    pub fn positions_from_first<R: Rng, F: FnMut(usize)>(
        &self,
        n: usize,
        first_u: f64,
        empty_threshold: f64,
        rng: &mut R,
        mut place: F,
    ) -> bool {
        let mut pos = (first_u.ln() * self.inv_ln_q) as u64;
        let any = pos < n as u64;
        while pos < n as u64 {
            place(pos as usize);
            let next = rng.gen_open01();
            if next <= empty_threshold {
                // Gap ≥ n ⇒ past the end of whatever remains.
                break;
            }
            pos = pos.saturating_add(1).saturating_add((next.ln() * self.inv_ln_q) as u64);
        }
        any
    }
}

/// Reconstructs, bit for bit, the `(0, 1]` uniform [`Rng::gen_open01`]
/// would have produced for the draw behind a [`Rng::gen_mantissa53`]
/// value (both arms of the identity are exact in `f64`).
#[inline]
pub fn open01_from_mantissa53(mantissa: u64) -> f64 {
    1.0 - mantissa as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds_distinct_for_different() {
        let a: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xorshift64Star::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64Star::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut r = Xorshift64Star::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn open01_never_returns_zero() {
        let mut r = Xorshift64Star::seed_from_u64(2);
        for _ in 0..100_000 {
            let u = r.gen_open01();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn gen_below_is_unbiased_enough() {
        let mut r = Xorshift64Star::seed_from_u64(3);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[r.gen_below(3) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 3.0;
            assert!((c as f64 - expected).abs() < 5.0 * expected.sqrt(), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Xorshift64Star::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4600..5400).contains(&trues), "trues {trues}");
    }

    #[test]
    fn trait_object_and_reborrow_work() {
        fn take_dyn(r: &mut dyn Rng) -> u64 {
            r.next_u64()
        }
        fn take_generic<R: Rng>(mut r: R) -> f64 {
            r.gen_f64()
        }
        let mut r = Xorshift64Star::seed_from_u64(5);
        let _ = take_dyn(&mut r);
        let _ = take_generic(&mut r); // &mut impl passes by reborrow
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn gen_below_zero_panics() {
        let mut r = Xorshift64Star::seed_from_u64(6);
        let _ = r.gen_below(0);
    }

    #[test]
    fn splitmix_is_deterministic_and_well_mixed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        // Consecutive outputs differ in roughly half their bits.
        for w in a.windows(2) {
            let flips = (w[0] ^ w[1]).count_ones();
            assert!((16..=48).contains(&flips), "flips {flips}");
        }
    }

    #[test]
    fn positions_fast_empty_stays_in_draw_lockstep_with_positions() {
        // Same placements, same return, same RNG state after every run —
        // across rates where the fast path almost always fires (tiny p),
        // sometimes fires, and almost never fires (large p).
        for p in [1e-9, 1e-3, 0.02, 0.3, 0.9] {
            let geo = Geometric::new(p);
            for n in [1usize, 13, 85, 1000] {
                let threshold = geo.empty_run_threshold(n);
                let gate = geo.empty_run_gate(n);
                assert!((0.0..1.0).contains(&threshold), "p={p} n={n}: {threshold}");
                let mut slow = Xorshift64Star::seed_from_u64(0xFA57 ^ n as u64);
                let mut fast = slow.clone();
                let mut gated = slow.clone();
                for round in 0..500 {
                    let mut placed_slow = Vec::new();
                    let mut placed_fast = Vec::new();
                    let mut placed_gated = Vec::new();
                    let any_slow = geo.positions(n, &mut slow, |q| placed_slow.push(q));
                    let any_fast =
                        geo.positions_fast_empty(n, threshold, &mut fast, |q| placed_fast.push(q));
                    // The raw-mantissa route the bit-sliced kernel takes.
                    let m = gated.gen_mantissa53();
                    let any_gated = m < gate
                        && geo.positions_from_first(
                            n,
                            open01_from_mantissa53(m),
                            threshold,
                            &mut gated,
                            |q| placed_gated.push(q),
                        );
                    assert_eq!(any_slow, any_fast, "p={p} n={n} round={round}");
                    assert_eq!(any_slow, any_gated, "p={p} n={n} round={round}");
                    assert_eq!(placed_slow, placed_fast, "p={p} n={n} round={round}");
                    assert_eq!(placed_slow, placed_gated, "p={p} n={n} round={round}");
                    assert_eq!(slow, fast, "rng states diverged at p={p} n={n} round={round}");
                    assert_eq!(slow, gated, "gated rng diverged at p={p} n={n} round={round}");
                }
            }
        }
    }

    #[test]
    fn geometric_matches_bernoulli_scan_in_distribution() {
        // Inverting the geometric CDF must reproduce the per-trial
        // Bernoulli law: compare the mean gap against (1-p)/p.
        for p in [0.01f64, 0.1, 0.5] {
            let geo = Geometric::new(p);
            let mut rng = Xorshift64Star::seed_from_u64(0xBEEF);
            let n = 200_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += geo.sample(&mut rng) as f64;
            }
            let mean = sum / n as f64;
            let expect = (1.0 - p) / p;
            let sigma = ((1.0 - p) / (p * p) / n as f64).sqrt();
            assert!((mean - expect).abs() < 6.0 * sigma, "p={p}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn geometric_is_deterministic_and_one_draw() {
        let geo = Geometric::new(0.03);
        let mut a = Xorshift64Star::seed_from_u64(5);
        let mut b = Xorshift64Star::seed_from_u64(5);
        let gap = geo.sample(&mut a);
        assert_eq!(gap, geo.sample(&mut b));
        // Exactly one u64 consumed: the generators stay in lock step.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn geometric_rejects_degenerate_rates() {
        let _ = Geometric::new(0.0);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn geometric_rejects_certain_success() {
        let _ = Geometric::new(1.0);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn geometric_rejects_nan() {
        let _ = Geometric::new(f64::NAN);
    }

    #[test]
    fn geometric_subnormal_p_saturates_instead_of_zeroing() {
        // 1 − p rounds to exactly 1.0 for these, so the naive ln would be
        // 0 and every gap would collapse to 0 (flipping *every* trial).
        // The hardened slope must instead make gaps astronomically long.
        for p in [f64::MIN_POSITIVE * 0.5, f64::MIN_POSITIVE, 1e-300, 1e-20, 2f64.powi(-54)] {
            let geo = Geometric::new(p);
            let mut rng = Xorshift64Star::seed_from_u64(13);
            for _ in 0..1000 {
                let gap = geo.sample(&mut rng);
                // Mean gap is 1/p ≥ 1e20; seeing anything below 2^40 in a
                // thousand draws would be a ~1e-8 fluke per draw.
                assert!(gap > 1 << 40, "p={p:e}: gap {gap} is absurdly short");
            }
        }
    }

    #[test]
    fn geometric_positions_never_spin_at_subnormal_p() {
        // The batched walk must terminate promptly (one or two draws)
        // even when every gap saturates at u64::MAX.
        let geo = Geometric::new(f64::MIN_POSITIVE);
        let mut rng = Xorshift64Star::seed_from_u64(17);
        for _ in 0..100 {
            let mut placed = Vec::new();
            let any = geo.positions(usize::MAX, &mut rng, |q| placed.push(q));
            assert!(!any && placed.is_empty(), "subnormal p placed {placed:?}");
        }
    }

    #[test]
    fn geometric_positions_matches_the_manual_skip_loop() {
        // `positions` must reproduce the historical inline loop draw for
        // draw — the scalar kernels' bit-identity depends on it.
        for (p, n) in [(0.01f64, 500usize), (0.3, 64), (0.9, 10)] {
            let geo = Geometric::new(p);
            let mut a = Xorshift64Star::seed_from_u64(p.to_bits() ^ n as u64);
            let mut b = a.clone();
            let mut got = Vec::new();
            let any = geo.positions(n, &mut a, |q| got.push(q));
            let mut want = Vec::new();
            let mut pos = geo.sample(&mut b);
            let want_any = pos < n as u64;
            while pos < n as u64 {
                want.push(pos as usize);
                pos = pos.saturating_add(1).saturating_add(geo.sample(&mut b));
            }
            assert_eq!(got, want, "p={p} n={n}");
            assert_eq!(any, want_any);
            assert_eq!(a.next_u64(), b.next_u64(), "draw counts diverged");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "positions must ascend");
        }
    }

    #[test]
    fn geometric_slope_is_unchanged_for_normal_rates() {
        // The ln_1p fallback must only engage where the naive logarithm
        // degenerates; everywhere else the sampler is bit-identical to
        // the original formula.
        for p in [1e-10, 1e-3, 0.01, 0.1, 0.5, 0.999] {
            assert_eq!(Geometric::new(p), Geometric { inv_ln_q: 1.0 / (1.0 - p).ln() }, "p={p}");
        }
    }

    #[test]
    fn streams64_matches_individual_streams() {
        let lanes = Xorshift64Star::streams64(99, 1000);
        for (i, lane) in lanes.iter().enumerate() {
            assert_eq!(*lane, Xorshift64Star::stream(99, 1000 + i as u64), "lane {i}");
        }
        // Wrap-around of the stream index is defined (wrapping add).
        let tail = Xorshift64Star::streams64(99, u64::MAX);
        assert_eq!(tail[1], Xorshift64Star::stream(99, 0));
    }

    #[test]
    fn stream_zero_matches_plain_seeding() {
        assert_eq!(Xorshift64Star::stream(42, 0), Xorshift64Star::seed_from_u64(42));
    }

    #[test]
    fn streams_are_reproducible_and_decorrelated() {
        let outputs: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                let mut r = Xorshift64Star::stream(7, i);
                (0..4).map(|_| r.next_u64()).collect()
            })
            .collect();
        for (i, a) in outputs.iter().enumerate() {
            assert_eq!(*a, {
                let mut r = Xorshift64Star::stream(7, i as u64);
                (0..4).map(|_| r.next_u64()).collect::<Vec<_>>()
            });
            for b in &outputs[i + 1..] {
                assert_ne!(a, b, "streams must not collide");
            }
        }
        // Stream mean still looks uniform.
        let mut sum = 0.0;
        let mut r = Xorshift64Star::stream(7, 3);
        for _ in 0..10_000 {
            sum += r.gen_f64();
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
