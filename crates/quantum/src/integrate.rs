//! Numerical integration of Schrödinger and Lindblad dynamics.
//!
//! All QIsim error models reduce to integrating either
//! `dψ/dt = -i H(t) ψ` (closed-system gate dynamics) or the Lindblad master
//! equation `dρ/dt = -i[H,ρ] + Σ_k D[L_k]ρ` (readout chains with decay and
//! measurement back-action). Hilbert spaces are tiny (dim ≤ ~64), so a fixed
//! step classic Runge–Kutta 4 integrator is accurate and fast; we renormalize
//! the state between steps to suppress drift over long pulses.

use crate::complex::C64;
use crate::matrix::CMatrix;

/// Right-hand side evaluation count heuristic: RK4 uses four per step.
const RK4_STAGES: usize = 4;

/// Integrates `dψ/dt = -i H(t) ψ` from `t0` over `duration` with `steps`
/// fixed RK4 steps, renormalizing after every step.
///
/// `hamiltonian` returns `H(t)` in angular-frequency units (rad/s when `t`
/// is in seconds; any consistent unit system works).
///
/// # Panics
///
/// Panics if `steps == 0` or the Hamiltonian dimension does not match `psi`.
///
/// # Examples
///
/// ```
/// use qisim_quantum::{C64, CMatrix, integrate::schrodinger_evolve};
/// use std::f64::consts::PI;
///
/// // Resonant Rabi drive: H = (Ω/2)·σx for time t = π/Ω flips |0> to |1>.
/// let omega = 2.0 * PI * 10.0e6;
/// let h = CMatrix::pauli_x().scaled(C64::from(omega / 2.0));
/// let psi0 = vec![C64::ONE, C64::ZERO];
/// let t = PI / omega;
/// let psi = schrodinger_evolve(&psi0, |_| h.clone(), 0.0, t, 400);
/// assert!(psi[1].abs() > 0.999);
/// ```
pub fn schrodinger_evolve<H>(
    psi0: &[C64],
    mut hamiltonian: H,
    t0: f64,
    duration: f64,
    steps: usize,
) -> Vec<C64>
where
    H: FnMut(f64) -> CMatrix,
{
    assert!(steps > 0, "steps must be positive");
    let dim = psi0.len();
    let dt = duration / steps as f64;
    let mut psi = psi0.to_vec();

    let deriv = |h: &CMatrix, v: &[C64]| -> Vec<C64> {
        let hv = h.mul_vec(v);
        hv.into_iter().map(|z| -C64::I * z).collect()
    };

    for n in 0..steps {
        let t = t0 + n as f64 * dt;
        let h1 = hamiltonian(t);
        assert_eq!(h1.dim(), dim, "Hamiltonian dimension mismatch");
        let h2 = hamiltonian(t + dt / 2.0);
        let h3 = hamiltonian(t + dt);

        let k1 = deriv(&h1, &psi);
        let y2: Vec<C64> = psi.iter().zip(&k1).map(|(y, k)| *y + *k * (dt / 2.0)).collect();
        let k2 = deriv(&h2, &y2);
        let y3: Vec<C64> = psi.iter().zip(&k2).map(|(y, k)| *y + *k * (dt / 2.0)).collect();
        let k3 = deriv(&h2, &y3);
        let y4: Vec<C64> = psi.iter().zip(&k3).map(|(y, k)| *y + *k * dt).collect();
        let k4 = deriv(&h3, &y4);

        for i in 0..dim {
            psi[i] += (k1[i] + k2[i] * 2.0 + k3[i] * 2.0 + k4[i]) * (dt / 6.0);
        }
        normalize(&mut psi);
    }
    psi
}

/// Integrates the full propagator `dU/dt = -i H(t) U` and returns the final
/// unitary, starting from the identity.
///
/// This is how the gate error models extract a *noisy unitary* to compare
/// against the ideal gate (Fig. 7 of the paper).
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn propagator<H>(
    dim: usize,
    mut hamiltonian: H,
    t0: f64,
    duration: f64,
    steps: usize,
) -> CMatrix
where
    H: FnMut(f64) -> CMatrix,
{
    assert!(steps > 0, "steps must be positive");
    let dt = duration / steps as f64;
    let mut u = CMatrix::identity(dim);

    let deriv = |h: &CMatrix, m: &CMatrix| -> CMatrix { (h * m).scaled(-C64::I) };

    for n in 0..steps {
        let t = t0 + n as f64 * dt;
        let h1 = hamiltonian(t);
        assert_eq!(h1.dim(), dim, "Hamiltonian dimension mismatch");
        let h2 = hamiltonian(t + dt / 2.0);
        let h3 = hamiltonian(t + dt);

        let k1 = deriv(&h1, &u);
        let k2 = deriv(&h2, &(&u + &k1.scaled(C64::from(dt / 2.0))));
        let k3 = deriv(&h2, &(&u + &k2.scaled(C64::from(dt / 2.0))));
        let k4 = deriv(&h3, &(&u + &k3.scaled(C64::from(dt))));

        let incr = &(&k1 + &k4) + &(&k2 + &k3).scaled(C64::from(2.0));
        u = &u + &incr.scaled(C64::from(dt / 6.0));
    }
    u
}

/// A Lindblad collapse operator with its rate already folded in
/// (i.e. `L = sqrt(rate) * op`).
#[derive(Debug, Clone)]
pub struct Collapse {
    operator: CMatrix,
    /// `L† L`, precomputed because it appears twice in the dissipator.
    ldag_l: CMatrix,
}

impl Collapse {
    /// Wraps `sqrt(rate) * op` as a collapse operator.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or `op` is not square.
    pub fn new(op: CMatrix, rate: f64) -> Self {
        assert!(rate >= 0.0, "collapse rate must be non-negative");
        let operator = op.scaled(C64::from(rate.sqrt()));
        let ldag_l = &operator.adjoint() * &operator;
        Collapse { operator, ldag_l }
    }

    /// The scaled operator `L`.
    pub fn operator(&self) -> &CMatrix {
        &self.operator
    }
}

/// Integrates the Lindblad master equation
/// `dρ/dt = -i[H(t),ρ] + Σ_k (L_k ρ L_k† − ½{L_k†L_k, ρ})`
/// with fixed-step RK4, returning the final density matrix.
///
/// # Panics
///
/// Panics if `steps == 0` or dimensions are inconsistent.
pub fn lindblad_evolve<H>(
    rho0: &CMatrix,
    mut hamiltonian: H,
    collapses: &[Collapse],
    t0: f64,
    duration: f64,
    steps: usize,
) -> CMatrix
where
    H: FnMut(f64) -> CMatrix,
{
    assert!(steps > 0, "steps must be positive");
    let dim = rho0.dim();
    let dt = duration / steps as f64;
    let mut rho = rho0.clone();

    let rhs = |h: &CMatrix, r: &CMatrix| -> CMatrix {
        let mut d = h.commutator(r).scaled(-C64::I);
        for c in collapses {
            let l = &c.operator;
            let jump = &(l * r) * &l.adjoint();
            let anti = &(&c.ldag_l * r) + &(r * &c.ldag_l);
            d = &d + &(&jump - &anti.scaled(C64::from(0.5)));
        }
        d
    };

    for n in 0..steps {
        let t = t0 + n as f64 * dt;
        let h1 = hamiltonian(t);
        assert_eq!(h1.dim(), dim, "Hamiltonian dimension mismatch");
        let h2 = hamiltonian(t + dt / 2.0);
        let h3 = hamiltonian(t + dt);

        let k1 = rhs(&h1, &rho);
        let k2 = rhs(&h2, &(&rho + &k1.scaled(C64::from(dt / 2.0))));
        let k3 = rhs(&h2, &(&rho + &k2.scaled(C64::from(dt / 2.0))));
        let k4 = rhs(&h3, &(&rho + &k3.scaled(C64::from(dt))));

        let incr = &(&k1 + &k4) + &(&k2 + &k3).scaled(C64::from(2.0));
        rho = &rho + &incr.scaled(C64::from(dt / 6.0));
    }
    rho
}

/// Estimated floating-point work of one Schrödinger integration, used by the
/// cycle-level profiler to budget simulation effort.
pub fn estimated_rhs_evals(steps: usize) -> usize {
    steps * RK4_STAGES
}

/// Normalizes a state vector in place. No-op on the zero vector.
pub fn normalize(psi: &mut [C64]) {
    let norm = psi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    if norm > 0.0 {
        for z in psi.iter_mut() {
            *z = *z / norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn free_precession_accumulates_phase() {
        // H = (ω/2)σz: |+> precesses about z at rate ω.
        let omega = 2.0 * PI * 5.0e6;
        let h = CMatrix::pauli_z().scaled(C64::from(omega / 2.0));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let psi0 = vec![C64::from(s), C64::from(s)];
        let t = PI / omega; // half turn: |+> -> |->
        let psi = schrodinger_evolve(&psi0, |_| h.clone(), 0.0, t, 200);
        let rel_phase = (psi[1] / psi[0]).arg();
        assert!((rel_phase.abs() - PI).abs() < 1e-6, "rel phase {rel_phase}");
    }

    #[test]
    fn propagator_matches_analytic_rotation() {
        // H = (Ω/2)σx for time t gives Rx(Ω t).
        let omega = 2.0 * PI * 20.0e6;
        let h = CMatrix::pauli_x().scaled(C64::from(omega / 2.0));
        let t = 12.5e-9;
        let u = propagator(2, |_| h.clone(), 0.0, t, 400);
        let ideal = CMatrix::rx(omega * t);
        assert!(u.approx_eq(&ideal, 1e-7), "diff {}", u.max_abs_diff(&ideal));
    }

    #[test]
    fn propagator_is_unitary() {
        let omega = 2.0 * PI * 15.0e6;
        let u = propagator(
            2,
            |t| {
                let envelope = (PI * t / 20e-9).sin().powi(2);
                CMatrix::pauli_y().scaled(C64::from(envelope * omega))
            },
            0.0,
            20e-9,
            400,
        );
        assert!(u.is_unitary(1e-7));
    }

    #[test]
    fn lindblad_decay_matches_exponential() {
        // Pure T1 decay of |1>: population decays as exp(-Γ t).
        let gamma = 1.0 / 30e-6;
        let sm = CMatrix::annihilation(2);
        let collapse = Collapse::new(sm, gamma);
        let mut rho0 = CMatrix::zeros(2, 2);
        rho0[(1, 1)] = C64::ONE;
        let t = 10e-6;
        let rho = lindblad_evolve(&rho0, |_| CMatrix::zeros(2, 2), &[collapse], 0.0, t, 500);
        let expected = (-gamma * t).exp();
        assert!((rho[(1, 1)].re - expected).abs() < 1e-6);
        // Trace is preserved.
        assert!((rho.trace().re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lindblad_dephasing_kills_coherence() {
        let gamma_phi = 1.0 / 5e-6;
        let collapse = Collapse::new(CMatrix::pauli_z(), gamma_phi / 2.0);
        let s = C64::from(0.5);
        let rho0 = CMatrix::from_flat(&[s, s, s, s]); // |+><+|
        let t = 5e-6;
        let rho = lindblad_evolve(&rho0, |_| CMatrix::zeros(2, 2), &[collapse], 0.0, t, 500);
        // For L = sqrt(g/2)*sigma_z, the dissipator sends rho01 -> -g*rho01,
        // so the coherence decays as exp(-g t).
        let expected = (-gamma_phi * t).exp() * 0.5;
        assert!(
            (rho[(0, 1)].abs() - expected).abs() < 1e-4,
            "coh {} vs {}",
            rho[(0, 1)].abs(),
            expected
        );
        // Populations untouched by pure dephasing.
        assert!((rho[(0, 0)].re - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut v = vec![C64::ZERO; 3];
        normalize(&mut v);
        assert!(v.iter().all(|z| *z == C64::ZERO));
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn zero_steps_panics() {
        let _ = propagator(2, |_| CMatrix::identity(2), 0.0, 1.0, 0);
    }
}
