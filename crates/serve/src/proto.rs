//! The `qisim-serve` wire protocol: one request per line, one response
//! per line, both built from the [`qisim::codec`] `key = value` grammar.
//!
//! # Request lines
//!
//! A request is a single newline-terminated line of `key = value` pairs
//! separated by `;`. Three **control keys** address the service itself
//! and may appear anywhere on the line:
//!
//! | key      | values                    | meaning                              |
//! |----------|---------------------------|--------------------------------------|
//! | `id`     | any `;`/newline-free text | opaque token echoed in the response  |
//! | `target` | `near_term`, `long_term`  | roadmap target (default `near_term`) |
//! | `trace`  | `0`, `1`                  | per-request flight-recorder capture  |
//! | `explain`| `0`, `1`                  | embed `Scalability::explain()` text  |
//!
//! Every remaining pair is a [`qisim::codec`] **spec document line** —
//! the same keys `codec::parse_spec` accepts, starting with `preset` —
//! so a spec file folds onto one request line by joining its content
//! lines with `; `. That includes the per-stage budget overrides
//! (`budget.<stage>`) and the scale-out topology knobs (`fridges`,
//! `link`, `links_per_fridge`, `shared_controllers`); an unknown stage
//! label or link kind is a typed `decode` error:
//!
//! ```text
//! id = 7; target = long_term; preset = cmos_baseline; drive_bits = 6
//! id = 8; preset = cmos_near_term; fridges = 4; link = photonic
//! ```
//!
//! Keys and values therefore must not contain `;` or newlines; decode
//! diagnostics count pairs the way the codec counts lines (the header is
//! line 1, the first spec pair line 2).
//!
//! # Response lines
//!
//! Exactly one response per request, classified by its first key:
//!
//! * `ok = 1; [request_id = …;] [id = …;] [trace_events = …;]
//!   [explain = …;]` followed by the **folded**
//!   [`qisim::codec::encode_scalability`] document (its lines joined
//!   with `; `). [`response_report`] unfolds it back into a document
//!   `codec::parse_scalability` accepts bit-identically.
//! * `error = <kind>; [request_id = …;] [id = …;] line = <n>;
//!   reason = <text>` — a typed per-request failure; `kind` is one of
//!   `decode`, `config`, `power`, `target`. The process keeps serving.
//! * `busy = 1; [request_id = …;] [id = …;] reason = <text>` — the
//!   bounded queue was full and the request was shed (backpressure, not
//!   failure: retry later).
//!
//! `request_id` is the **server-assigned** id of the request (a
//! process-unique positive integer, distinct from the client's opaque
//! `id` token): the same number stamps the request's JSONL log records
//! and its flight-recorder span arguments, so one grep correlates a
//! response with everything the service observed while answering it.
//! [`strip_request_id`] removes the pair for byte-identity comparisons
//! against direct engine output.

use qisim::codec;
use qisim::error::{DecodeError, QisimError};
use qisim::scalability::Scalability;
use qisim::spec::DesignSpec;
use qisim::surface::target::Target;
use std::fmt::Write as _;

/// The pair separator of folded documents and request lines.
pub const PAIR_SEP: &str = "; ";

/// The roadmap target a request analyzes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetKind {
    /// The paper's near-term target (default).
    #[default]
    NearTerm,
    /// The paper's long-term (quantum-supremacy) target.
    LongTerm,
}

impl TargetKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            TargetKind::NearTerm => "near_term",
            TargetKind::LongTerm => "long_term",
        }
    }

    /// Inverse of [`TargetKind::label`].
    pub fn from_label(label: &str) -> Option<TargetKind> {
        match label {
            "near_term" => Some(TargetKind::NearTerm),
            "long_term" => Some(TargetKind::LongTerm),
            _ => None,
        }
    }

    /// The concrete roadmap target.
    pub fn target(self) -> Target {
        match self {
            TargetKind::NearTerm => Target::near_term(),
            TargetKind::LongTerm => Target::long_term(),
        }
    }
}

/// One parsed request: control keys plus the design spec to analyze.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Opaque client token echoed in the response.
    pub id: Option<String>,
    /// Roadmap target to analyze against.
    pub target: TargetKind,
    /// Whether to capture a per-request flight-recorder trace.
    pub trace: bool,
    /// Whether to embed the `explain()` report in the response.
    pub explain: bool,
    /// The design spec (unvalidated; `spec.build()` diagnoses knobs).
    pub spec: DesignSpec,
}

impl Request {
    /// A plain request for one spec against the near-term target.
    pub fn new(spec: DesignSpec) -> Self {
        Request { id: None, target: TargetKind::NearTerm, trace: false, explain: false, spec }
    }
}

/// Parses one request line (without its trailing newline).
///
/// # Errors
///
/// Returns [`QisimError::Decode`] for an empty line, a pair without
/// `=`, an unknown/duplicate control value, or any spec-document
/// failure ([`codec::parse_spec`]); diagnostics are pair-anchored the
/// way codec documents are line-anchored.
pub fn parse_request_line(line: &str) -> Result<Request, QisimError> {
    let mut id: Option<String> = None;
    let mut target: Option<TargetKind> = None;
    let mut trace: Option<bool> = None;
    let mut explain: Option<bool> = None;
    let mut spec_doc = String::from(codec::SPEC_HEADER);
    spec_doc.push('\n');
    let mut pairs = 0usize;
    for segment in line.split(';') {
        let segment = segment.trim();
        if segment.is_empty() {
            continue;
        }
        pairs += 1;
        let Some((key, value)) = segment.split_once('=') else {
            return Err(
                DecodeError::new(1, format!("expected `key = value`, found `{segment}`")).into()
            );
        };
        let (key, value) = (key.trim(), value.trim());
        let dup = |set: bool| {
            if set {
                Err(DecodeError::new(1, format!("duplicate key `{key}`")))
            } else {
                Ok(())
            }
        };
        match key {
            "id" => {
                dup(id.is_some())?;
                if value.is_empty() {
                    return Err(DecodeError::new(1, "empty `id` value").into());
                }
                id = Some(value.to_string());
            }
            "target" => {
                dup(target.is_some())?;
                target = Some(
                    TargetKind::from_label(value)
                        .ok_or_else(|| DecodeError::new(1, format!("unknown target `{value}`")))?,
                );
            }
            "trace" => {
                dup(trace.is_some())?;
                trace = Some(parse_flag(key, value)?);
            }
            "explain" => {
                dup(explain.is_some())?;
                explain = Some(parse_flag(key, value)?);
            }
            _ => {
                // A spec-document line; the codec parses (and rejects)
                // it with the rest of the document below.
                let _ = writeln!(spec_doc, "{key} = {value}");
            }
        }
    }
    if pairs == 0 {
        return Err(DecodeError::new(1, "empty request line (no `key = value` pairs)").into());
    }
    let spec = codec::parse_spec(&spec_doc)?;
    Ok(Request {
        id,
        target: target.unwrap_or_default(),
        trace: trace.unwrap_or(false),
        explain: explain.unwrap_or(false),
        spec,
    })
}

/// Parses a `0`/`1` control flag.
fn parse_flag(key: &str, value: &str) -> Result<bool, DecodeError> {
    match value {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(DecodeError::new(1, format!("`{key}` must be 0 or 1, found `{value}`"))),
    }
}

/// Encodes a [`Request`] as one wire line (no trailing newline): control
/// keys first, then the spec document folded with [`fold`].
pub fn encode_request_line(request: &Request) -> String {
    let mut line = String::new();
    if let Some(id) = &request.id {
        let _ = write!(line, "id = {}{PAIR_SEP}", sanitize(id));
    }
    if request.target != TargetKind::NearTerm {
        let _ = write!(line, "target = {}{PAIR_SEP}", request.target.label());
    }
    if request.trace {
        line.push_str("trace = 1");
        line.push_str(PAIR_SEP);
    }
    if request.explain {
        line.push_str("explain = 1");
        line.push_str(PAIR_SEP);
    }
    // Drop the document header: request lines carry spec pairs directly.
    let doc = codec::encode_spec(&request.spec);
    let body = doc.strip_prefix(codec::SPEC_HEADER).unwrap_or(&doc).trim_start_matches('\n');
    line.push_str(&fold(body));
    line
}

/// Folds a multi-line codec document onto one line: content lines joined
/// with [`PAIR_SEP`] (blank lines dropped). The inverse is [`unfold`].
pub fn fold(doc: &str) -> String {
    doc.lines().filter(|l| !l.trim().is_empty()).collect::<Vec<_>>().join(PAIR_SEP)
}

/// Unfolds a [`fold`]ed document back into newline-separated lines (with
/// a trailing newline), ready for `codec::parse_spec` /
/// `codec::parse_scalability`.
pub fn unfold(line: &str) -> String {
    let mut doc = String::with_capacity(line.len() + 1);
    for segment in line.split(';') {
        let segment = segment.trim();
        if !segment.is_empty() {
            doc.push_str(segment);
            doc.push('\n');
        }
    }
    doc
}

/// Builds a success response line: `ok = 1`, the server-assigned
/// request id, the echoed client id, any extra pairs (trace/explain
/// results), then the folded report document.
pub fn ok_response(
    request_id: Option<u64>,
    id: Option<&str>,
    extras: &[(&str, String)],
    report: &Scalability,
) -> String {
    let mut line = String::from("ok = 1");
    push_request_id(&mut line, request_id);
    if let Some(id) = id {
        let _ = write!(line, "{PAIR_SEP}id = {}", sanitize(id));
    }
    for (key, value) in extras {
        let _ = write!(line, "{PAIR_SEP}{key} = {}", sanitize(value));
    }
    let _ = write!(line, "{PAIR_SEP}{}", fold(&codec::encode_scalability(report)));
    line.push('\n');
    line
}

/// Builds a typed error response line from a [`QisimError`].
pub fn error_response(request_id: Option<u64>, id: Option<&str>, error: &QisimError) -> String {
    let (kind, line_no) = match error {
        QisimError::Decode(e) => ("decode", e.line),
        QisimError::Config(_) => ("config", 0),
        QisimError::Power(_) => ("power", 0),
        QisimError::Target(_) => ("target", 0),
        _ => ("error", 0),
    };
    let mut line = format!("error = {kind}");
    push_request_id(&mut line, request_id);
    if let Some(id) = id {
        let _ = write!(line, "{PAIR_SEP}id = {}", sanitize(id));
    }
    let _ = write!(line, "{PAIR_SEP}line = {line_no}");
    let _ = write!(line, "{PAIR_SEP}reason = {}", sanitize(&error.to_string()));
    line.push('\n');
    line
}

/// Builds a backpressure shed response line.
pub fn busy_response(request_id: Option<u64>, id: Option<&str>, reason: &str) -> String {
    let mut line = String::from("busy = 1");
    push_request_id(&mut line, request_id);
    if let Some(id) = id {
        let _ = write!(line, "{PAIR_SEP}id = {}", sanitize(id));
    }
    let _ = write!(line, "{PAIR_SEP}reason = {}", sanitize(reason));
    line.push('\n');
    line
}

/// Appends the server-assigned request-id pair (directly after the
/// status pair, before the echoed client id).
fn push_request_id(line: &mut String, request_id: Option<u64>) {
    if let Some(rid) = request_id {
        let _ = write!(line, "{PAIR_SEP}request_id = {rid}");
    }
}

/// The server-assigned request id a response carries, if any.
pub fn response_request_id(line: &str) -> Option<u64> {
    pair_value(line, "request_id")?.parse().ok()
}

/// Removes the server-assigned `request_id` pair from a response line,
/// so tests and benches can compare responses byte-for-byte against
/// direct engine output regardless of request numbering.
pub fn strip_request_id(line: &str) -> String {
    let (body, newline) = match line.strip_suffix('\n') {
        Some(body) => (body, "\n"),
        None => (line, ""),
    };
    let mut removed = false;
    let kept: Vec<&str> = body
        .split(PAIR_SEP)
        .filter(|segment| {
            if !removed {
                if let Some((key, _)) = segment.split_once('=') {
                    if key.trim() == "request_id" {
                        removed = true;
                        return false;
                    }
                }
            }
            true
        })
        .collect();
    let mut out = kept.join(PAIR_SEP);
    out.push_str(newline);
    out
}

/// How a response line classifies (by its first key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// `ok = 1`: the folded report follows.
    Ok,
    /// `error = <kind>`: a typed per-request failure.
    Error,
    /// `busy = 1`: the request was shed under backpressure.
    Busy,
}

/// Classifies a response line; `None` for anything not produced by this
/// protocol.
pub fn response_kind(line: &str) -> Option<ResponseKind> {
    let first = line.split(';').next()?.trim();
    let key = first.split('=').next()?.trim();
    match key {
        "ok" => Some(ResponseKind::Ok),
        "error" => Some(ResponseKind::Error),
        "busy" => Some(ResponseKind::Busy),
        _ => None,
    }
}

/// Extracts the folded report from an `ok` response and unfolds it into
/// a document [`qisim::codec::parse_scalability`] accepts. `None` when
/// the line carries no report.
pub fn response_report(line: &str) -> Option<String> {
    let header_at = line.find(codec::SCALABILITY_HEADER)?;
    Some(unfold(&line[header_at..]))
}

/// The value of a `key = value` pair on a wire line (first occurrence).
pub fn pair_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split(';').find_map(|segment| {
        let (k, v) = segment.split_once('=')?;
        (k.trim() == key).then(|| v.trim())
    })
}

/// Best-effort extraction of the `id` control key from a raw request
/// line, so error and `busy` responses can echo the client token even
/// when the line never parsed into a [`Request`].
pub fn request_id(line: &str) -> Option<&str> {
    pair_value(line, "id").filter(|id| !id.is_empty())
}

/// Replaces the two characters the wire format reserves (`;` and
/// newlines) so echoed ids and diagnostic texts can never tear a line.
fn sanitize(text: &str) -> String {
    text.replace(';', ",").replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim::spec::Preset;

    #[test]
    fn request_lines_round_trip() {
        let request = Request {
            id: Some("client-7".to_string()),
            target: TargetKind::LongTerm,
            trace: true,
            explain: false,
            spec: DesignSpec::new(Preset::CmosBaseline).drive_bits(6).name("lab run"),
        };
        let line = encode_request_line(&request);
        assert_eq!(parse_request_line(&line).unwrap(), request);
        // Defaults stay off the wire.
        let plain = Request::new(DesignSpec::new(Preset::RsfqBaseline));
        assert_eq!(encode_request_line(&plain), "preset = rsfq_baseline");
        assert_eq!(parse_request_line("preset = rsfq_baseline").unwrap(), plain);
    }

    #[test]
    fn empty_and_malformed_request_lines_are_typed_errors() {
        for line in ["", "   ", ";", "; ;"] {
            let err = parse_request_line(line).unwrap_err();
            let QisimError::Decode(e) = err else { panic!("expected decode error") };
            assert_eq!(e.line, 1);
            assert!(e.reason.contains("empty request line"), "{e}");
        }
        let err = parse_request_line("preset = cmos_baseline; what even").unwrap_err();
        assert!(err.to_string().contains("key = value"), "{err}");
        let err = parse_request_line("target = warp").unwrap_err();
        assert!(err.to_string().contains("unknown target"), "{err}");
        let err = parse_request_line("trace = yes; preset = cmos_baseline").unwrap_err();
        assert!(err.to_string().contains("must be 0 or 1"), "{err}");
        let err = parse_request_line("id = a; id = b; preset = cmos_baseline").unwrap_err();
        assert!(err.to_string().contains("duplicate key `id`"), "{err}");
        // Spec failures keep the codec's diagnostics (pair 1 = doc line 2).
        let err = parse_request_line("preset = warp_drive").unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
    }

    #[test]
    fn fold_and_unfold_are_inverse_on_documents() {
        let spec = DesignSpec::new(Preset::CmosBaseline).drive_bits(6);
        let doc = codec::encode_spec(&spec);
        assert_eq!(unfold(&fold(&doc)), doc);
    }

    #[test]
    fn responses_classify_and_carry_pairs() {
        let busy = busy_response(None, Some("9"), "queue full (depth 4)");
        assert_eq!(response_kind(&busy), Some(ResponseKind::Busy));
        assert_eq!(pair_value(&busy, "id"), Some("9"));
        assert!(busy.ends_with('\n'));
        let err = error_response(
            None,
            None,
            &QisimError::Decode(qisim::error::DecodeError::new(2, "unknown key `x; y`")),
        );
        assert_eq!(response_kind(&err), Some(ResponseKind::Error));
        assert_eq!(pair_value(&err, "line"), Some("2"));
        // Reserved characters in diagnostics cannot tear the line.
        assert!(!err.trim_end().contains('\n'));
        assert!(pair_value(&err, "reason").unwrap().contains("x, y"));
        assert_eq!(response_kind("garbage"), None);
    }

    #[test]
    fn request_ids_are_echoed_and_strippable() {
        let busy = busy_response(Some(41), Some("9"), "queue full");
        assert!(busy.starts_with("busy = 1; request_id = 41; id = 9"), "{busy}");
        assert_eq!(response_request_id(&busy), Some(41));
        assert_eq!(strip_request_id(&busy), busy_response(None, Some("9"), "queue full"));
        let err = error_response(
            Some(7),
            None,
            &QisimError::Decode(qisim::error::DecodeError::new(3, "bad pair")),
        );
        assert_eq!(response_request_id(&err), Some(7));
        assert_eq!(
            strip_request_id(&err),
            error_response(
                None,
                None,
                &QisimError::Decode(qisim::error::DecodeError::new(3, "bad pair")),
            )
        );
        // Absent pair: stripping is the identity, extraction is None.
        let plain = busy_response(None, None, "shed");
        assert_eq!(response_request_id(&plain), None);
        assert_eq!(strip_request_id(&plain), plain);
    }
}
