//! The serving loops: synchronous stdin/stdout framing
//! ([`serve_lines`]) and the long-running TCP service ([`Server`]),
//! both answering through one shared batch executor.
//!
//! Every request follows the same path: parse ([`crate::proto`]) →
//! validate (`DesignSpec::build` / `topology`) → analyze —
//! standard-fridge, single-fridge requests using the default `packed`
//! estimator are grouped per target and answered through
//! [`qisim::engine::try_analyze_many`] (one fan-out over the shared
//! `qisim-par` pool per batch); budget-override, multi-fridge
//! (`fridges = N`), traced, and Monte-Carlo-estimator (`estimator =
//! sliced` / `rare`) requests run individually through the same staged
//! engine. All paths share the process-wide `qisim_power::memo` LRU, so
//! a hot working set answers from cache no matter which client asked
//! first.
//!
//! A request can never take the process down: malformed lines, invalid
//! knobs, and engine failures all become typed `error` responses, and a
//! full queue becomes a typed `busy` response (shed, counted under
//! `serve.shed`).
//!
//! # Request ids
//!
//! Every received line gets a process-unique `request_id` (the accept
//! sequence number). The id is echoed on the response line, stamped on
//! the request's `serve.request.start` / `serve.request.finish` JSONL
//! log records (`QISIM_LOG`), and — for requests that run individually
//! through the staged engine — attached to their flight-recorder span
//! arguments via [`qisim_obs::RequestScope`]. Requests answered through
//! the grouped `try_analyze_many` fast path share one fan-out, so their
//! engine-stage spans carry no per-request id (the response and log
//! records still do).

use crate::config::{ServeConfig, MAX_LINE_BYTES};
use crate::proto::{self, Request};
use qisim::engine;
use qisim::error::QisimError;
use qisim::hal::topology::FridgeTopology;
use qisim::scalability::Scalability;
use qisim::spec::Estimator;
use qisim::QciDesign;
use qisim_obs::{counter, gauge, observe};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How often blocked loops (accept poll, worker wait, connection reads)
/// re-check the stop flag and the stop file.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Service counters, independent of the observability feature (the
/// `serve.*` metrics mirror these when `obs` is compiled in).
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Request lines received (including shed and malformed ones).
    pub requests: u64,
    /// Successful (`ok`) responses.
    pub ok: u64,
    /// Typed `error` responses.
    pub errors: u64,
    /// `busy` responses (requests shed under backpressure).
    pub shed: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A parsed, validated request ready for the batch executor.
struct Prepared {
    seq: u64,
    request: Request,
    design: QciDesign,
    topology: FridgeTopology,
    /// Standard fridge, single-fridge topology: eligible for the
    /// `try_analyze_many` fast path.
    groupable: bool,
    estimator: Estimator,
}

/// Parses and validates one request line into a [`Prepared`] analysis.
fn prepare(seq: u64, line: &str) -> Result<Prepared, QisimError> {
    let request = proto::parse_request_line(line.trim_end_matches(['\n', '\r']))?;
    let design = request.spec.build()?;
    let topology = request.spec.topology()?;
    let groupable = !request.spec.has_budget_overrides() && !request.spec.has_scale_out();
    let estimator = request.spec.chosen_estimator();
    Ok(Prepared { seq, request, design, topology, groupable, estimator })
}

/// Analyzes a batch of prepared requests and renders one response line
/// per request, in batch order.
///
/// Standard-fridge, single-fridge, untraced, `packed`-estimator requests
/// are grouped per roadmap target and answered through one
/// [`engine::try_analyze_many`] call each (the `qisim-par` fan-out);
/// everything else — budget overrides, multi-fridge topologies, traced
/// requests, and the Monte-Carlo estimators (which parallelize
/// internally) — runs individually through the same staged engine, so
/// every response is bit-identical to a direct `try_analyze_spec` of the
/// same request.
fn answer_batch(config: &ServeConfig, batch: &[Prepared]) -> Vec<String> {
    counter!("serve.batches");
    observe!("serve.batch_size", batch.len() as f64);
    let mut results: Vec<Option<Result<Scalability, QisimError>>> = Vec::new();
    results.resize_with(batch.len(), || None);
    for target in [proto::TargetKind::NearTerm, proto::TargetKind::LongTerm] {
        let group: Vec<usize> = (0..batch.len())
            .filter(|&i| {
                let p = &batch[i];
                p.groupable
                    && !p.request.trace
                    && p.estimator == Estimator::Packed
                    && p.request.target == target
            })
            .collect();
        if group.is_empty() {
            continue;
        }
        let designs: Vec<QciDesign> = group.iter().map(|&i| batch[i].design).collect();
        match engine::try_analyze_many(&designs, &target.target()) {
            Ok(verdicts) => {
                for (&i, verdict) in group.iter().zip(verdicts) {
                    results[i] = Some(Ok(verdict));
                }
            }
            // A batch-level failure loses per-request attribution; rerun
            // the group one by one so each request gets its own verdict
            // or diagnostic.
            Err(_) => {
                for &i in &group {
                    results[i] = Some(engine::try_analyze(&batch[i].design, &target.target()));
                }
            }
        }
    }
    batch
        .iter()
        .zip(results)
        .map(|(prepared, grouped)| {
            // Individually-run requests execute inside the scope, so
            // their engine-stage spans and log records carry the id.
            let _scope = qisim_obs::RequestScope::enter(prepared.seq);
            let mut extras: Vec<(&str, String)> = Vec::new();
            let result = match grouped {
                Some(result) => result,
                None if prepared.request.trace => run_traced(config, prepared, &mut extras),
                // Budget-override, scale-out, and Monte-Carlo-estimator
                // requests: same staged engine, custom topology/estimator.
                None => engine::try_analyze_topology(
                    &prepared.design,
                    &prepared.request.target.target(),
                    &prepared.topology,
                    prepared.estimator,
                ),
            };
            render_response(prepared, result, extras)
        })
        .collect()
}

/// Renders the response line for one prepared request, stamping the
/// spec's display name on success (the `try_analyze_spec` contract).
fn render_response(
    prepared: &Prepared,
    result: Result<Scalability, QisimError>,
    mut extras: Vec<(&str, String)>,
) -> String {
    let id = prepared.request.id.as_deref();
    match result {
        Ok(mut verdict) => {
            verdict.design = prepared.request.spec.display_name();
            if prepared.request.explain {
                extras.push(("explain", verdict.explain().trim_end().replace('\n', " | ")));
            }
            proto::ok_response(Some(prepared.seq), id, &extras, &verdict)
        }
        Err(error) => proto::error_response(Some(prepared.seq), id, &error),
    }
}

/// Emits the `serve.request.start` log record for one received line.
fn log_request_start(seq: u64, queue_depth: usize) {
    if qisim_obs::log::armed(qisim_obs::log::Level::Info) {
        let _scope = qisim_obs::RequestScope::enter(seq);
        qisim_obs::log::record(qisim_obs::log::Level::Info, "serve.request.start")
            .u64("queue_depth", queue_depth as u64)
            .emit();
    }
}

/// Emits the `serve.request.finish` log record (outcome, batch size,
/// queue wait, end-to-end latency) and, past the configured
/// [`ServeConfig::slow_ms`] threshold, a `serve.request.slow` warning
/// plus the `serve.slow` counter.
fn log_request_finish(
    config: &ServeConfig,
    seq: u64,
    response: &str,
    batch_size: usize,
    queue_wait: Duration,
    latency: Duration,
) {
    let latency_ms = latency.as_secs_f64() * 1e3;
    let slow = config.slow_ms.is_some_and(|ms| latency_ms > ms as f64);
    if slow {
        counter!("serve.slow");
    }
    if !qisim_obs::log::armed(qisim_obs::log::Level::Warn) {
        return;
    }
    let _scope = qisim_obs::RequestScope::enter(seq);
    if qisim_obs::log::armed(qisim_obs::log::Level::Info) {
        let outcome = match proto::response_kind(response) {
            Some(proto::ResponseKind::Ok) => "ok",
            Some(proto::ResponseKind::Busy) => "busy",
            _ => "error",
        };
        qisim_obs::log::record(qisim_obs::log::Level::Info, "serve.request.finish")
            .str("outcome", outcome)
            .u64("batch_size", batch_size as u64)
            .f64("queue_wait_ms", queue_wait.as_secs_f64() * 1e3)
            .f64("latency_ms", latency_ms)
            .emit();
    }
    if slow {
        qisim_obs::log::record(qisim_obs::log::Level::Warn, "serve.request.slow")
            .f64("latency_ms", latency_ms)
            .u64("threshold_ms", config.slow_ms.unwrap_or(0))
            .emit();
    }
}

/// Runs one traced request: arms the process-global flight recorder
/// around the analysis, drains the session, and reports the captured
/// event count (plus a Chrome-trace dump when
/// [`ServeConfig::trace_dir`] is set).
///
/// Capture serializes on a module lock — the recorder is process-global
/// — and is skipped (event count 0) when `QISIM_TRACE` already armed
/// whole-process tracing, so a per-request opt-in can never truncate an
/// operator's full-run trace.
fn run_traced(
    config: &ServeConfig,
    prepared: &Prepared,
    extras: &mut Vec<(&str, String)>,
) -> Result<Scalability, QisimError> {
    static TRACE_LOCK: Mutex<()> = Mutex::new(());
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let target = prepared.request.target.target();
    if qisim_obs::trace::armed() {
        extras.push(("trace_events", "0".to_string()));
        return engine::try_analyze_topology(
            &prepared.design,
            &target,
            &prepared.topology,
            prepared.estimator,
        );
    }
    qisim_obs::trace::arm();
    qisim_obs::trace::clear();
    let result = engine::try_analyze_topology(
        &prepared.design,
        &target,
        &prepared.topology,
        prepared.estimator,
    );
    let session = qisim_obs::TraceSession::drain();
    qisim_obs::trace::disarm();
    let events: usize = session.threads.iter().map(|t| t.events.len()).sum();
    extras.push(("trace_events", events.to_string()));
    if let Some(dir) = &config.trace_dir {
        let path = dir.join(format!("req-{}.trace.json", prepared.seq));
        // Best-effort: an unwritable trace dir must not fail the request.
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(path, qisim_obs::trace_export::chrome_trace_json(&session));
        }
    }
    result
}

/// Serves newline-delimited requests from `input` until EOF — the
/// stdin/stdout framing. Responses are written (and flushed) in request
/// order, one line each; EOF is the graceful-shutdown signal.
///
/// Each line runs through the same batch executor as the TCP service
/// (a batch of one), so responses are bit-identical across framings.
///
/// # Errors
///
/// Returns only transport failures (`input`/`output` I/O errors);
/// request-level problems become typed `error` response lines.
pub fn serve_lines(
    input: impl BufRead,
    mut output: impl Write,
    config: &ServeConfig,
) -> std::io::Result<StatsSnapshot> {
    let stats = Stats::default();
    let mut seq = 0u64;
    for line in input.lines() {
        let line = line?;
        seq += 1;
        stats.requests.fetch_add(1, Ordering::Relaxed);
        counter!("serve.requests");
        log_request_start(seq, 0);
        let t0 = Instant::now();
        let response = match prepare(seq, &line) {
            Ok(prepared) => {
                let mut responses = answer_batch(config, &[prepared]);
                responses.pop().unwrap_or_default()
            }
            Err(error) => proto::error_response(Some(seq), proto::request_id(&line), &error),
        };
        let latency = t0.elapsed();
        observe!("serve.request_ns", latency.as_nanos() as f64);
        track_response(&stats, &response);
        log_request_finish(config, seq, &response, 1, Duration::ZERO, latency);
        output.write_all(response.as_bytes())?;
        output.flush()?;
    }
    Ok(stats.snapshot())
}

/// Updates counters from a rendered response line.
fn track_response(stats: &Stats, response: &str) {
    match proto::response_kind(response) {
        Some(proto::ResponseKind::Ok) => {
            stats.ok.fetch_add(1, Ordering::Relaxed);
            counter!("serve.responses");
        }
        Some(proto::ResponseKind::Busy) => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            counter!("serve.shed");
        }
        _ => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            counter!("serve.errors");
        }
    }
}

/// One accepted request waiting for the worker.
struct Job {
    seq: u64,
    line: String,
    t0: Instant,
    out: Arc<Mutex<TcpStream>>,
}

/// State shared between the accept loop, connection readers, and the
/// batch worker.
struct Shared {
    config: ServeConfig,
    stats: Stats,
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
    stop: AtomicBool,
    seq: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

impl crate::admin::ServiceStatus for Shared {
    fn queue_depth(&self) -> usize {
        self.lock_queue().len()
    }

    fn queue_cap(&self) -> usize {
        self.config.queue_depth
    }

    fn stopping(&self) -> bool {
        Shared::stopping(self)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

/// The long-running TCP service: an accept loop, one reader thread per
/// connection, and a single batch worker draining a bounded queue
/// through [`qisim::engine::try_analyze_many`].
///
/// Backpressure is explicit: when the queue holds
/// [`ServeConfig::queue_depth`] requests, new ones are shed immediately
/// with a `busy` response (`serve.shed`). Shutdown is graceful — via
/// [`Server::shutdown`], or by creating the configured
/// [`ServeConfig::stop_file`] — and drains every accepted request before
/// the worker exits.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    worker: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("stats", &self.stats.snapshot())
            .field("stop", &self.stopping())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the service and starts serving. Use port 0 to let the OS
    /// pick; [`Server::addr`] reports the bound address.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration I/O error; a failed bind spawns
    /// nothing.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            stats: Stats::default(),
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept = std::thread::Builder::new().name("qisim-serve-accept".into()).spawn({
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            move || accept_loop(listener, shared, conns)
        })?;
        let worker = std::thread::Builder::new().name("qisim-serve-worker".into()).spawn({
            let shared = Arc::clone(&shared);
            move || worker_loop(shared)
        })?;
        Ok(Server { addr, shared, accept: Some(accept), worker: Some(worker), conns })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the service has begun stopping (programmatic
    /// [`Server::shutdown`] or the stop file appearing).
    pub fn stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A handle the [`crate::admin::AdminServer`] observes the serving
    /// loop through (queue depth, shedding state, counters).
    pub fn status(&self) -> Arc<dyn crate::admin::ServiceStatus> {
        Arc::clone(&self.shared) as Arc<dyn crate::admin::ServiceStatus>
    }

    /// Blocks until the service begins stopping (the stop-file path of
    /// the `qisim-serve` binary), polling at a small fixed interval.
    pub fn wait_until_stopping(&self) {
        while !self.stopping() {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Stops accepting, drains every accepted request, joins all
    /// threads, and returns the final counters. Idempotent.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work.notify_all();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accepts connections until stopped; also the stop-file poller.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.stopping() {
            return;
        }
        if let Some(stop_file) = &shared.config.stop_file {
            if stop_file.exists() {
                shared.stop.store(true, Ordering::Relaxed);
                shared.work.notify_all();
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                counter!("serve.connections");
                if stream.set_nonblocking(false).is_err()
                    || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
                {
                    continue;
                }
                // Request/response lines are tiny; leaving Nagle on costs
                // a delayed-ACK round trip (~40 ms) per request.
                let _ = stream.set_nodelay(true);
                let spawned = std::thread::Builder::new().name("qisim-serve-conn".into()).spawn({
                    let shared = Arc::clone(&shared);
                    move || connection_loop(stream, shared)
                });
                if let Ok(handle) = spawned {
                    conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                }
            }
            // Non-blocking accept: idle poll, re-check stop conditions.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads request lines off one connection, enqueueing each (or shedding
/// it with a `busy` response when the queue is full) until EOF, a
/// transport error, an oversized line, or service stop.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let out = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Reads accumulate across timeouts (`read_line` appends), so the
        // stop flag gets checked every POLL_INTERVAL even mid-line.
        let eof = loop {
            if shared.stopping() {
                return;
            }
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) => break false,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if line.len() > MAX_LINE_BYTES {
                        oversized_line(&shared, &line, &out);
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if line.is_empty() {
            return; // clean EOF
        }
        if line.len() > MAX_LINE_BYTES {
            oversized_line(&shared, &line, &out);
            return;
        }
        enqueue(&shared, &line, &out);
        if eof {
            return; // final line without trailing newline
        }
    }
}

/// Answers an oversized request line with a typed error (the connection
/// is closed by the caller: the rest of the line is unread garbage).
fn oversized_line(shared: &Shared, line: &str, out: &Arc<Mutex<TcpStream>>) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    counter!("serve.requests");
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
    let error = QisimError::Decode(qisim::error::DecodeError::new(
        1,
        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    ));
    let response = proto::error_response(Some(seq), proto::request_id(line), &error);
    track_response(&shared.stats, &response);
    log_request_start(seq, 0);
    log_request_finish(&shared.config, seq, &response, 1, Duration::ZERO, Duration::ZERO);
    write_response(out, &response);
}

/// Accepts one request line into the bounded queue, or sheds it.
fn enqueue(shared: &Shared, line: &str, out: &Arc<Mutex<TcpStream>>) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    counter!("serve.requests");
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
    let mut queue = shared.lock_queue();
    if queue.len() >= shared.config.queue_depth {
        let depth = queue.len();
        drop(queue);
        let response = proto::busy_response(
            Some(seq),
            proto::request_id(line),
            &format!("queue full (depth {depth})"),
        );
        track_response(&shared.stats, &response);
        log_request_start(seq, depth);
        log_request_finish(&shared.config, seq, &response, 0, Duration::ZERO, Duration::ZERO);
        write_response(out, &response);
        return;
    }
    queue.push_back(Job { seq, line: line.to_string(), t0: Instant::now(), out: Arc::clone(out) });
    let depth = queue.len();
    drop(queue);
    counter!("serve.accepted");
    gauge!("serve.inflight", depth as f64);
    log_request_start(seq, depth);
    shared.work.notify_all();
}

/// The single batch worker: drains the queue in batches of up to
/// [`ServeConfig::batch_max`], answers each batch through
/// [`answer_batch`], and keeps draining after a stop request until the
/// queue is empty (accepted requests are always answered).
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.lock_queue();
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(shared.config.batch_max);
                    break queue.drain(..n).collect();
                }
                if shared.stopping() {
                    return;
                }
                queue = match shared.work.wait_timeout(queue, POLL_INTERVAL) {
                    Ok((guard, _)) => guard,
                    Err(e) => e.into_inner().0,
                };
            }
        };
        // The wait-in-queue interval ends here, when the batch drains.
        let queue_waits: Vec<Duration> = batch.iter().map(|job| job.t0.elapsed()).collect();
        gauge!("serve.inflight", (shared.lock_queue().len() + batch.len()) as f64);
        if !shared.config.batch_delay.is_zero() {
            std::thread::sleep(shared.config.batch_delay);
        }
        // Parse failures short-circuit; the rest form the batch. All
        // responses are written back in request order, so a pipelined
        // connection reads its answers in the order it sent them.
        let mut slots: Vec<Option<String>> = Vec::new();
        slots.resize_with(batch.len(), || None);
        let mut prepared: Vec<Prepared> = Vec::with_capacity(batch.len());
        let mut prepared_at: Vec<usize> = Vec::with_capacity(batch.len());
        for (i, job) in batch.iter().enumerate() {
            match prepare(job.seq, &job.line) {
                Ok(p) => {
                    prepared.push(p);
                    prepared_at.push(i);
                }
                Err(error) => {
                    slots[i] = Some(proto::error_response(
                        Some(job.seq),
                        proto::request_id(&job.line),
                        &error,
                    ));
                }
            }
        }
        let answers = answer_batch(&shared.config, &prepared);
        for (i, response) in prepared_at.into_iter().zip(answers) {
            slots[i] = Some(response);
        }
        let batch_size = batch.len();
        for ((job, slot), queue_wait) in batch.iter().zip(slots).zip(queue_waits) {
            if let Some(response) = slot {
                finish_job(&shared, job, response, queue_wait, batch_size);
            }
        }
        gauge!("serve.inflight", shared.lock_queue().len() as f64);
    }
}

/// Records latency, counters, and the finish log record for one
/// answered job, then writes its response line.
fn finish_job(
    shared: &Shared,
    job: &Job,
    response: String,
    queue_wait: Duration,
    batch_size: usize,
) {
    let latency = job.t0.elapsed();
    observe!("serve.request_ns", latency.as_nanos() as f64);
    track_response(&shared.stats, &response);
    log_request_finish(&shared.config, job.seq, &response, batch_size, queue_wait, latency);
    write_response(&job.out, &response);
}

/// Writes one response line; client-side failures (a closed socket) are
/// deliberately ignored — a vanished client must not affect the service.
fn write_response(out: &Arc<Mutex<TcpStream>>, response: &str) {
    let mut stream = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
