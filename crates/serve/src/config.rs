//! Service configuration: queue depth, batch size, and the operator
//! knobs the `qisim-serve` binary reads from `QISIM_SERVE_*` environment
//! variables (one table in `docs/SERVING.md` documents them all).

use std::path::PathBuf;
use std::time::Duration;

/// Default bound on the number of accepted-but-unanswered requests.
/// Past it the service sheds load with a typed `busy` response instead
/// of queueing without bound (`QISIM_SERVE_QUEUE` overrides).
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Default maximum number of requests answered in one
/// `try_analyze_many` batch (`QISIM_SERVE_BATCH` overrides).
pub const DEFAULT_BATCH_MAX: usize = 64;

/// Hard cap on one request line, in bytes. A connection that streams a
/// longer line without a newline gets a typed error response and is
/// closed — a misbehaving client must not grow server memory unboundedly.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Runtime configuration of the serving loop.
///
/// [`ServeConfig::default`] is the paper-workload sweet spot;
/// [`ServeConfig::from_env`] layers the `QISIM_SERVE_*` operator knobs
/// on top (each read once, invalid values fall back to the default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded accept queue depth; requests past it are shed with a
    /// `busy` response ([`DEFAULT_QUEUE_DEPTH`]).
    pub queue_depth: usize,
    /// Maximum requests per `try_analyze_many` batch
    /// ([`DEFAULT_BATCH_MAX`]).
    pub batch_max: usize,
    /// Graceful-shutdown signal file: the TCP accept loop polls for this
    /// path and stops the service once it exists (`None` = no file
    /// polling; stdin/stdout framing stops at EOF instead).
    pub stop_file: Option<PathBuf>,
    /// Directory for per-request Chrome-trace dumps (`trace = 1`
    /// requests); `None` keeps traces in-memory (the response still
    /// carries the event count).
    pub trace_dir: Option<PathBuf>,
    /// Artificial per-batch delay — a fault-injection knob for
    /// backpressure tests, benches, and operator drills (`Duration::ZERO`
    /// in production).
    pub batch_delay: Duration,
    /// Slow-request threshold: a request whose end-to-end latency
    /// exceeds this many milliseconds gets a `serve.request.slow` warn
    /// log record and bumps the `serve.slow` counter (`None` = no
    /// threshold; `QISIM_SLOW_MS` overrides).
    pub slow_ms: Option<u64>,
    /// Bind address for the HTTP admin plane (`/metrics`, `/healthz`,
    /// `/readyz`, `/statusz`); `None` keeps the plane off
    /// (`QISIM_SERVE_ADMIN` overrides).
    pub admin_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: DEFAULT_QUEUE_DEPTH,
            batch_max: DEFAULT_BATCH_MAX,
            stop_file: None,
            trace_dir: None,
            batch_delay: Duration::ZERO,
            slow_ms: None,
            admin_addr: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration with every `QISIM_SERVE_*` environment
    /// override applied: `QISIM_SERVE_QUEUE`, `QISIM_SERVE_BATCH`
    /// (positive integers), `QISIM_SERVE_STOP`, `QISIM_SERVE_TRACE_DIR`
    /// (paths), `QISIM_SERVE_DELAY_MS` (a non-negative integer; fault
    /// injection, see [`ServeConfig::batch_delay`]), `QISIM_SLOW_MS` (a
    /// positive integer, see [`ServeConfig::slow_ms`]), and
    /// `QISIM_SERVE_ADMIN` (a bind address, see
    /// [`ServeConfig::admin_addr`]).
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Some(n) = env_positive("QISIM_SERVE_QUEUE") {
            config.queue_depth = n;
        }
        if let Some(n) = env_positive("QISIM_SERVE_BATCH") {
            config.batch_max = n;
        }
        config.stop_file = env_path("QISIM_SERVE_STOP");
        config.trace_dir = env_path("QISIM_SERVE_TRACE_DIR");
        if let Some(ms) = std::env::var("QISIM_SERVE_DELAY_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
        {
            config.batch_delay = Duration::from_millis(ms);
        }
        config.slow_ms = env_positive("QISIM_SLOW_MS").map(|n| n as u64);
        config.admin_addr = env_path("QISIM_SERVE_ADMIN").map(|p| p.to_string_lossy().into_owned());
        config
    }
}

/// Reads a positive-integer environment variable; `None` for anything
/// else (unset, zero, negative, garbage).
fn env_positive(name: &str) -> Option<usize> {
    match std::env::var(name).ok()?.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Reads a non-empty path environment variable.
fn env_path(name: &str) -> Option<PathBuf> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        None
    } else {
        Some(PathBuf::from(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(c.batch_max, DEFAULT_BATCH_MAX);
        assert_eq!(c.stop_file, None);
        assert_eq!(c.trace_dir, None);
        assert_eq!(c.batch_delay, Duration::ZERO);
        assert_eq!(c.slow_ms, None);
        assert_eq!(c.admin_addr, None);
    }

    #[test]
    fn env_parsers_reject_garbage() {
        // Direct parser checks — the env itself is process-global, so
        // these go through variables no other test touches.
        std::env::set_var("QISIM_SERVE_TEST_N", "8");
        assert_eq!(env_positive("QISIM_SERVE_TEST_N"), Some(8));
        std::env::set_var("QISIM_SERVE_TEST_N", "0");
        assert_eq!(env_positive("QISIM_SERVE_TEST_N"), None);
        std::env::set_var("QISIM_SERVE_TEST_N", "many");
        assert_eq!(env_positive("QISIM_SERVE_TEST_N"), None);
        std::env::remove_var("QISIM_SERVE_TEST_N");
        assert_eq!(env_positive("QISIM_SERVE_TEST_N"), None);
        std::env::set_var("QISIM_SERVE_TEST_P", "  ");
        assert_eq!(env_path("QISIM_SERVE_TEST_P"), None);
        std::env::set_var("QISIM_SERVE_TEST_P", "stop.now");
        assert_eq!(env_path("QISIM_SERVE_TEST_P"), Some(PathBuf::from("stop.now")));
        std::env::remove_var("QISIM_SERVE_TEST_P");
    }
}
