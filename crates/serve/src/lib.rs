//! `qisim-serve` — a batch scalability-analysis service over the
//! [`qisim::codec`] wire format.
//!
//! The crates below this one answer one question — *how many qubits can
//! this interface design drive?* — as a library call. This crate turns
//! that call into a long-running service: newline-delimited
//! `key = value` request lines in, one response line per request out,
//! over either **stdin/stdout** ([`serve_lines`]) or **TCP**
//! ([`Server`]). The wire grammar is the [`proto`] module's fold of the
//! codec's multi-line documents onto single lines.
//!
//! Design points (the operator's manual, `docs/SERVING.md`, covers them
//! in depth):
//!
//! * **One engine, one answer.** Every framing funnels into the same
//!   batch executor; responses are bit-identical to a direct
//!   [`qisim::engine::try_analyze_spec`] of the same request.
//! * **Batching.** Standard-fridge requests are grouped per roadmap
//!   target and answered through [`qisim::engine::try_analyze_many`] —
//!   one fan-out over the shared `qisim-par` pool per batch — and all
//!   requests share the process-wide `qisim_power` memo cache, so a hot
//!   working set answers from cache regardless of which client asked
//!   first.
//! * **Requests fail; the process doesn't.** Malformed lines, invalid
//!   knobs, and engine failures become typed `error` responses. A full
//!   queue becomes a typed `busy` response (shed, counted under
//!   `serve.shed`). Nothing a client sends tears the service down.
//! * **Observable.** `serve.*` counters, an in-flight gauge, and
//!   request-latency histograms flow through the `qisim-obs` OpenMetrics
//!   exporter (`QISIM_METRICS`); `trace = 1` requests capture a
//!   per-request flight-recorder trace. Every request gets a
//!   server-assigned `request_id` echoed on its response and stamped on
//!   its `QISIM_LOG` JSONL records and flight-recorder span arguments,
//!   and the [`admin`] HTTP plane (`QISIM_SERVE_ADMIN`) serves live
//!   `/metrics`, `/healthz`, `/readyz`, and `/statusz` endpoints
//!   (`docs/OBSERVABILITY.md` is the field guide).
//! * **Graceful shutdown.** stdin framing stops at EOF; the TCP service
//!   stops on [`Server::shutdown`] or when the configured stop file
//!   appears, draining every accepted request first.
//!
//! # Example: one request over the stdin/stdout framing
//!
//! ```
//! use qisim_serve::{serve_lines, ServeConfig};
//! use std::io::Cursor;
//!
//! let input = Cursor::new("id = 1; preset = cmos_baseline\n");
//! let mut output = Vec::new();
//! let stats = serve_lines(input, &mut output, &ServeConfig::default())?;
//! let response = String::from_utf8(output)?;
//! assert!(response.starts_with("ok = 1; request_id = 1; id = 1; qisim scalability v1; "));
//! assert_eq!(stats.ok, 1);
//!
//! // The folded report unfolds back into a codec document.
//! let report = qisim_serve::proto::response_report(&response).expect("report");
//! let verdict = qisim::codec::parse_scalability(&report)?;
//! assert!(verdict.power_limited_qubits > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admin;
pub mod config;
pub mod proto;
pub mod server;

pub use admin::{AdminServer, ServiceStatus};
pub use config::{ServeConfig, DEFAULT_BATCH_MAX, DEFAULT_QUEUE_DEPTH, MAX_LINE_BYTES};
pub use proto::{Request, ResponseKind, TargetKind};
pub use server::{serve_lines, Server, StatsSnapshot};
