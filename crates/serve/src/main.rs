//! The `qisim-serve` binary: the batch analysis service as an operator
//! runs it. `docs/SERVING.md` is the manual.
//!
//! ```text
//! qisim-serve [--stdio]                          # serve stdin→stdout (default)
//! qisim-serve --tcp ADDR [--stop-file PATH] ...  # serve TCP until the stop file appears
//! ```
//!
//! Flags layer over the `QISIM_SERVE_*` environment (flag wins):
//! `--queue N`, `--batch N`, `--stop-file PATH`, `--trace-dir PATH`,
//! `--delay-ms N`. Counters go to stderr on shutdown; responses are the
//! only thing written to stdout.

use qisim_serve::{serve_lines, ServeConfig, Server, StatsSnapshot};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: qisim-serve [--stdio | --tcp ADDR] \
[--queue N] [--batch N] [--stop-file PATH] [--trace-dir PATH] [--delay-ms N]
    --stdio            serve newline-delimited requests stdin -> stdout (default)
    --tcp ADDR         listen on ADDR (e.g. 127.0.0.1:7878; port 0 = OS-assigned)
    --queue N          bounded queue depth before shedding  (env QISIM_SERVE_QUEUE)
    --batch N          max requests per analysis batch      (env QISIM_SERVE_BATCH)
    --stop-file PATH   stop gracefully when PATH appears    (env QISIM_SERVE_STOP)
    --trace-dir PATH   write per-request trace JSON here    (env QISIM_SERVE_TRACE_DIR)
    --delay-ms N       fault injection: delay each batch    (env QISIM_SERVE_DELAY_MS)
see docs/SERVING.md for the protocol grammar and the full environment table";

enum Mode {
    Stdio,
    Tcp(String),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (mode, config) = match parse_args(args.into_iter()) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("qisim-serve: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match mode {
        Mode::Stdio => run_stdio(&config),
        Mode::Tcp(addr) => run_tcp(&addr, config),
    };
    qisim_obs::telemetry::flush_now();
    match outcome {
        Ok(stats) => {
            eprintln!(
                "qisim-serve: done requests = {} ok = {} errors = {} shed = {}",
                stats.requests, stats.ok, stats.errors, stats.shed
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("qisim-serve: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Parses flags over the `QISIM_SERVE_*` environment defaults.
fn parse_args(args: impl Iterator<Item = String>) -> Result<(Mode, ServeConfig), String> {
    let mut config = ServeConfig::from_env();
    let mut mode = Mode::Stdio;
    let mut args = args;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--stdio" => mode = Mode::Stdio,
            "--tcp" => mode = Mode::Tcp(value("--tcp")?),
            "--queue" => config.queue_depth = positive(&flag, &value("--queue")?)?,
            "--batch" => config.batch_max = positive(&flag, &value("--batch")?)?,
            "--stop-file" => config.stop_file = Some(PathBuf::from(value("--stop-file")?)),
            "--trace-dir" => config.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--delay-ms" => {
                let raw = value("--delay-ms")?;
                let ms = raw.trim().parse::<u64>().map_err(|_| {
                    format!("`--delay-ms` needs a non-negative integer, got `{raw}`")
                })?;
                config.batch_delay = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((mode, config))
}

/// Parses a positive-integer flag value.
fn positive(flag: &str, raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{raw}`")),
    }
}

/// The stdin/stdout framing: serve until EOF.
fn run_stdio(config: &ServeConfig) -> Result<StatsSnapshot, String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(stdin.lock(), stdout.lock(), config)
        .map_err(|e| format!("stdio transport failed: {e}"))
}

/// The TCP framing: serve until the stop file appears (or forever —
/// operators without a stop file stop the process instead).
fn run_tcp(addr: &str, config: ServeConfig) -> Result<StatsSnapshot, String> {
    if config.stop_file.is_none() {
        eprintln!(
            "qisim-serve: no stop file configured (--stop-file / QISIM_SERVE_STOP); \
serving until the process is stopped"
        );
    }
    let server = Server::bind(addr, config).map_err(|e| format!("bind {addr} failed: {e}"))?;
    // The one stdout line in TCP mode: machine-readable bound address,
    // so wrappers (and tools/ci.sh) can pick up an OS-assigned port.
    println!("qisim-serve listening = {}", server.addr());
    server.wait_until_stopping();
    Ok(server.shutdown())
}
