//! The `qisim-serve` binary: the batch analysis service as an operator
//! runs it. `docs/SERVING.md` is the manual; `docs/OBSERVABILITY.md`
//! covers the admin plane, logging, and metrics.
//!
//! ```text
//! qisim-serve [--stdio]                          # serve stdin→stdout (default)
//! qisim-serve --tcp ADDR [--stop-file PATH] ...  # serve TCP until the stop file appears
//! qisim-serve --check-om PATH                    # validate an OpenMetrics file, exit 0/1
//! ```
//!
//! Flags layer over the `QISIM_SERVE_*` environment (flag wins):
//! `--queue N`, `--batch N`, `--stop-file PATH`, `--trace-dir PATH`,
//! `--delay-ms N`, `--slow-ms N`, `--admin ADDR`. Counters go to stderr
//! on shutdown; responses are the only thing written to stdout.

use qisim_serve::{serve_lines, AdminServer, ServeConfig, Server, StatsSnapshot};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: qisim-serve [--stdio | --tcp ADDR | --check-om PATH] \
[--queue N] [--batch N] [--stop-file PATH] [--trace-dir PATH] [--delay-ms N] [--slow-ms N] \
[--admin ADDR]
    --stdio            serve newline-delimited requests stdin -> stdout (default)
    --tcp ADDR         listen on ADDR (e.g. 127.0.0.1:7878; port 0 = OS-assigned)
    --queue N          bounded queue depth before shedding  (env QISIM_SERVE_QUEUE)
    --batch N          max requests per analysis batch      (env QISIM_SERVE_BATCH)
    --stop-file PATH   stop gracefully when PATH appears    (env QISIM_SERVE_STOP)
    --trace-dir PATH   write per-request trace JSON here    (env QISIM_SERVE_TRACE_DIR)
    --delay-ms N       fault injection: delay each batch    (env QISIM_SERVE_DELAY_MS)
    --slow-ms N        warn-log requests slower than N ms   (env QISIM_SLOW_MS)
    --admin ADDR       HTTP admin plane: /metrics /healthz /readyz /statusz
                       (TCP mode only; env QISIM_SERVE_ADMIN)
    --check-om PATH    validate PATH as OpenMetrics text and exit (0 = well-formed)
see docs/SERVING.md for the protocol grammar and docs/OBSERVABILITY.md for the
admin plane, QISIM_LOG structured logging, and the full environment table";

enum Mode {
    Stdio,
    Tcp(String),
    CheckOm(PathBuf),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (mode, config) = match parse_args(args.into_iter()) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("qisim-serve: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match mode {
        Mode::Stdio => run_stdio(&config),
        Mode::Tcp(addr) => run_tcp(&addr, config),
        Mode::CheckOm(path) => return check_om(&path),
    };
    qisim_obs::telemetry::flush_now();
    qisim_obs::log::shutdown();
    match outcome {
        Ok(stats) => {
            eprintln!(
                "qisim-serve: done requests = {} ok = {} errors = {} shed = {}",
                stats.requests, stats.ok, stats.errors, stats.shed
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("qisim-serve: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Parses flags over the `QISIM_SERVE_*` environment defaults.
fn parse_args(args: impl Iterator<Item = String>) -> Result<(Mode, ServeConfig), String> {
    let mut config = ServeConfig::from_env();
    let mut mode = Mode::Stdio;
    let mut args = args;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag.as_str() {
            "--stdio" => mode = Mode::Stdio,
            "--tcp" => mode = Mode::Tcp(value("--tcp")?),
            "--check-om" => mode = Mode::CheckOm(PathBuf::from(value("--check-om")?)),
            "--queue" => config.queue_depth = positive(&flag, &value("--queue")?)?,
            "--batch" => config.batch_max = positive(&flag, &value("--batch")?)?,
            "--stop-file" => config.stop_file = Some(PathBuf::from(value("--stop-file")?)),
            "--trace-dir" => config.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--delay-ms" => {
                let raw = value("--delay-ms")?;
                let ms = raw.trim().parse::<u64>().map_err(|_| {
                    format!("`--delay-ms` needs a non-negative integer, got `{raw}`")
                })?;
                config.batch_delay = Duration::from_millis(ms);
            }
            "--slow-ms" => config.slow_ms = Some(positive(&flag, &value("--slow-ms")?)? as u64),
            "--admin" => config.admin_addr = Some(value("--admin")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.admin_addr.is_some() && !matches!(mode, Mode::Tcp(_)) {
        return Err("`--admin` (QISIM_SERVE_ADMIN) requires `--tcp`: the stdio framing \
owns stdout and exits at EOF, so there is no service for the admin plane to describe"
            .to_string());
    }
    Ok((mode, config))
}

/// Parses a positive-integer flag value.
fn positive(flag: &str, raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{raw}`")),
    }
}

/// The stdin/stdout framing: serve until EOF.
fn run_stdio(config: &ServeConfig) -> Result<StatsSnapshot, String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines(stdin.lock(), stdout.lock(), config)
        .map_err(|e| format!("stdio transport failed: {e}"))
}

/// The TCP framing: serve until the stop file appears (or forever —
/// operators without a stop file stop the process instead), with the
/// HTTP admin plane alongside when configured.
fn run_tcp(addr: &str, config: ServeConfig) -> Result<StatsSnapshot, String> {
    if config.stop_file.is_none() {
        eprintln!(
            "qisim-serve: no stop file configured (--stop-file / QISIM_SERVE_STOP); \
serving until the process is stopped"
        );
    }
    let admin_addr = config.admin_addr.clone();
    let server = Server::bind(addr, config).map_err(|e| format!("bind {addr} failed: {e}"))?;
    let admin = match admin_addr {
        Some(admin_addr) => Some(
            AdminServer::bind(admin_addr.as_str(), server.status())
                .map_err(|e| format!("admin bind {admin_addr} failed: {e}"))?,
        ),
        None => None,
    };
    // The stdout lines in TCP mode: machine-readable bound addresses, so
    // wrappers (and tools/ci.sh) can pick up OS-assigned ports.
    println!("qisim-serve listening = {}", server.addr());
    if let Some(admin) = &admin {
        println!("qisim-serve admin = {}", admin.addr());
    }
    server.wait_until_stopping();
    // Stop order: the admin plane outlives the drain, so probes see
    // `/readyz` flip to 503 while accepted requests finish.
    let stats = server.shutdown();
    if let Some(admin) = admin {
        admin.shutdown();
    }
    Ok(stats)
}

/// `--check-om`: validates a file as OpenMetrics exposition text — the
/// self-contained validator CI's admin-plane smoke test leans on.
fn check_om(path: &PathBuf) -> ExitCode {
    match std::fs::read_to_string(path) {
        Ok(text) if qisim_obs::openmetrics_is_well_formed(&text) => {
            println!("qisim-serve: {} is well-formed OpenMetrics", path.display());
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("qisim-serve: {} is NOT well-formed OpenMetrics", path.display());
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("qisim-serve: cannot read {}: {error}", path.display());
            ExitCode::FAILURE
        }
    }
}
