//! The HTTP admin plane: a minimal zero-dependency HTTP/1.x listener on
//! a separate port (`QISIM_SERVE_ADMIN` / `--admin`) answering the four
//! standard operational endpoints while the wire-protocol service keeps
//! serving:
//!
//! | path       | answer                                                    |
//! |------------|-----------------------------------------------------------|
//! | `/metrics` | OpenMetrics **delta** since the previous scrape            |
//! | `/healthz` | `200 ok` while the process answers HTTP at all             |
//! | `/readyz`  | `200 ready`, or `503` when stopping / the queue is full    |
//! | `/statusz` | version, uptime, threads, queue, counters, memo cache, and |
//! |            | per-engine-stage latency percentiles (plain text)          |
//!
//! The listener serves scrapers and probes, not browsers: HTTP/1.0 and
//! 1.1 `GET`s with tiny heads, every response `Connection: close`. One
//! thread accepts and answers inline — admin traffic is a probe every
//! few seconds, never a reason for a thread pool. `/metrics` output is
//! produced by [`qisim_obs::openmetrics`] over
//! [`Snapshot::delta_since`], the same path the `QISIM_METRICS` file
//! exporter uses, and is self-checked with
//! [`qisim_obs::openmetrics_is_well_formed`] before it goes on the wire
//! (a malformed exposition would poison a scraper; a `500` is honest).
//!
//! Nothing here can panic: lock poisoning is absorbed with
//! `unwrap_or_else(|e| e.into_inner())` and every client failure is a
//! closed connection, never a crash (the panic-regression gate holds
//! this crate at a zero budget).

use crate::server::StatsSnapshot;
use qisim_obs::{counter, Snapshot};
use std::io::Read;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the stop flag while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Per-read socket timeout while collecting a request head.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Total budget for reading one request head before giving up.
const HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Hard cap on a request head — anything longer is a misbehaving client.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The OpenMetrics exposition content type (`/metrics`).
const OPENMETRICS_CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// What the admin plane may observe of the serving loop — implemented by
/// the TCP [`crate::Server`] (via [`crate::Server::status`]) and by
/// anything a test wants to probe with.
pub trait ServiceStatus: Send + Sync {
    /// Requests currently queued for the batch worker.
    fn queue_depth(&self) -> usize;
    /// The bounded queue capacity (shed threshold).
    fn queue_cap(&self) -> usize;
    /// Whether the service has begun stopping.
    fn stopping(&self) -> bool;
    /// Point-in-time service counters.
    fn stats(&self) -> StatsSnapshot;
}

/// State shared with the admin accept thread.
struct AdminState {
    status: Arc<dyn ServiceStatus>,
    /// The previous `/metrics` scrape, so each scrape exposes the
    /// interval's activity (the delta), not lifetime totals.
    prev: Mutex<Snapshot>,
    started: Instant,
    stop: AtomicBool,
}

/// The admin-plane HTTP listener. Binding starts the accept thread;
/// dropping (or [`AdminServer::shutdown`]) stops and joins it.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    state: Arc<AdminState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for AdminState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminState")
            .field("stop", &self.stop.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AdminServer {
    /// Binds the admin listener and starts answering. Use port 0 to let
    /// the OS pick; [`AdminServer::addr`] reports the bound address.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration I/O error; a failed bind spawns
    /// nothing.
    pub fn bind(
        addr: impl ToSocketAddrs,
        status: Arc<dyn ServiceStatus>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AdminState {
            status,
            prev: Mutex::new(Snapshot::default()),
            started: Instant::now(),
            stop: AtomicBool::new(false),
        });
        let thread = std::thread::Builder::new().name("qisim-admin".into()).spawn({
            let state = Arc::clone(&state);
            move || accept_loop(listener, state)
        })?;
        Ok(AdminServer { addr, state, thread: Some(thread) })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it. Idempotent.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accepts and answers admin connections inline until stopped.
fn accept_loop(listener: TcpListener, state: Arc<AdminState>) {
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => handle_connection(stream, &state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads one request head and writes one response. Client failures close
/// the connection silently — a probe that vanished is not an event.
fn handle_connection(mut stream: TcpStream, state: &AdminState) {
    let Some(head) = read_head(&mut stream) else { return };
    counter!("admin.requests");
    let response = respond(&head, state);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Collects bytes until the blank line ending an HTTP request head (or a
/// size/time cap). `None` on transport errors.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let deadline = Instant::now() + HEAD_DEADLINE;
    let mut head: Vec<u8> = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head_complete(&head) || head.len() >= MAX_HEAD_BYTES {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
        if Instant::now() >= deadline {
            break;
        }
    }
    if head.is_empty() {
        None
    } else {
        Some(String::from_utf8_lossy(&head).into_owned())
    }
}

/// Whether the head already contains its terminating blank line.
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Routes one parsed request head to its endpoint.
fn respond(head: &str, state: &AdminState) -> String {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            return http_response(400, "Bad Request", "text/plain; charset=utf-8", "bad request\n")
        }
    };
    // Probes and scrapers only read; anything else is a method error.
    if method != "GET" {
        return http_response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/" => http_response(
            200,
            "OK",
            "text/plain; charset=utf-8",
            "qisim-serve admin plane: /metrics /healthz /readyz /statusz\n",
        ),
        "/healthz" => http_response(200, "OK", "text/plain; charset=utf-8", "ok\n"),
        "/readyz" => readyz(state),
        "/metrics" => metrics(state),
        "/statusz" => http_response(200, "OK", "text/plain; charset=utf-8", &statusz(state)),
        _ => http_response(404, "Not Found", "text/plain; charset=utf-8", "not found\n"),
    }
}

/// `/readyz`: ready only while the service accepts new work.
fn readyz(state: &AdminState) -> String {
    let status = &state.status;
    if status.stopping() {
        return http_response(
            503,
            "Service Unavailable",
            "text/plain; charset=utf-8",
            "stopping\n",
        );
    }
    let (depth, cap) = (status.queue_depth(), status.queue_cap());
    if depth >= cap {
        return http_response(
            503,
            "Service Unavailable",
            "text/plain; charset=utf-8",
            &format!("shedding: queue full ({depth}/{cap})\n"),
        );
    }
    http_response(200, "OK", "text/plain; charset=utf-8", "ready\n")
}

/// `/metrics`: the OpenMetrics delta since the previous scrape,
/// self-validated before it goes on the wire.
fn metrics(state: &AdminState) -> String {
    let current = qisim_obs::snapshot();
    let delta = {
        let mut prev = state.prev.lock().unwrap_or_else(|e| e.into_inner());
        let delta = current.delta_since(&prev);
        *prev = current;
        delta
    };
    let body = qisim_obs::openmetrics(&delta);
    if qisim_obs::openmetrics_is_well_formed(&body) {
        http_response(200, "OK", OPENMETRICS_CONTENT_TYPE, &body)
    } else {
        http_response(
            500,
            "Internal Server Error",
            "text/plain; charset=utf-8",
            "exposition failed self-validation\n",
        )
    }
}

/// `/statusz`: the operator's one-page plain-text process overview.
fn statusz(state: &AdminState) -> String {
    use std::fmt::Write as _;
    let status = &state.status;
    let stats = status.stats();
    let memo = qisim_power::memo::cache_stats();
    let mut page = String::from("qisim-serve statusz\n");
    let _ = writeln!(page, "version = {}", env!("CARGO_PKG_VERSION"));
    let _ = writeln!(page, "uptime_s = {}", state.started.elapsed().as_secs());
    let _ = writeln!(page, "threads = {}", thread_count().unwrap_or(0));
    let _ = writeln!(page, "queue_depth = {}", status.queue_depth());
    let _ = writeln!(page, "queue_cap = {}", status.queue_cap());
    let _ = writeln!(page, "stopping = {}", u8::from(status.stopping()));
    let _ = writeln!(
        page,
        "requests = {}; ok = {}; errors = {}; shed = {}",
        stats.requests, stats.ok, stats.errors, stats.shed
    );
    let _ = writeln!(
        page,
        "memo: hits = {}; misses = {}; hit_rate = {:.3}; len = {}; evictions = {}; \
         bytes_est = {}; cap = {}",
        memo.hits,
        memo.misses,
        memo.hit_rate(),
        memo.len,
        memo.evictions,
        memo.bytes_est,
        memo.cap
    );
    // Lifetime per-engine-stage latency percentiles, from the same span
    // histograms the OpenMetrics exporter publishes.
    let snap = qisim_obs::snapshot();
    for (name, span) in &snap.spans {
        if !name.starts_with("engine.stage.") {
            continue;
        }
        let ms = |q: f64| span.durations.quantile(q) / 1e6;
        let _ = writeln!(
            page,
            "stage {name}: count = {}; p50_ms = {:.3}; p90_ms = {:.3}; p99_ms = {:.3}",
            span.count,
            ms(0.5),
            ms(0.9),
            ms(0.99)
        );
    }
    page
}

/// Best-effort thread count from `/proc/self/status` (Linux); `None`
/// elsewhere.
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Renders one complete HTTP/1.1 response (always `Connection: close`).
fn http_response(code: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeStatus {
        depth: usize,
        cap: usize,
        stopping: bool,
    }

    impl ServiceStatus for FakeStatus {
        fn queue_depth(&self) -> usize {
            self.depth
        }
        fn queue_cap(&self) -> usize {
            self.cap
        }
        fn stopping(&self) -> bool {
            self.stopping
        }
        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot { requests: 10, ok: 7, errors: 2, shed: 1 }
        }
    }

    fn state(status: FakeStatus) -> AdminState {
        AdminState {
            status: Arc::new(status),
            prev: Mutex::new(Snapshot::default()),
            started: Instant::now(),
            stop: AtomicBool::new(false),
        }
    }

    fn body_of(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap()
    }

    #[test]
    fn routing_covers_probes_errors_and_unknowns() {
        let state = state(FakeStatus { depth: 0, cap: 4, stopping: false });
        let ok = respond("GET /healthz HTTP/1.1\r\n\r\n", &state);
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert_eq!(body_of(&ok), "ok\n");
        let ready = respond("GET /readyz?verbose=1 HTTP/1.0\r\n\r\n", &state);
        assert!(ready.starts_with("HTTP/1.1 200"), "{ready}");
        assert_eq!(body_of(&ready), "ready\n");
        let index = respond("GET / HTTP/1.1\r\n\r\n", &state);
        assert!(body_of(&index).contains("/statusz"));
        assert!(respond("GET /nope HTTP/1.1\r\n\r\n", &state).starts_with("HTTP/1.1 404"));
        assert!(respond("POST /metrics HTTP/1.1\r\n\r\n", &state).starts_with("HTTP/1.1 405"));
        assert!(respond("garbage\r\n\r\n", &state).starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn readyz_reports_stopping_and_full_queues() {
        let stopping = state(FakeStatus { depth: 0, cap: 4, stopping: true });
        let response = respond("GET /readyz HTTP/1.1\r\n\r\n", &stopping);
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert_eq!(body_of(&response), "stopping\n");
        let full = state(FakeStatus { depth: 4, cap: 4, stopping: false });
        let response = respond("GET /readyz HTTP/1.1\r\n\r\n", &full);
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(body_of(&response).contains("queue full (4/4)"), "{response}");
    }

    #[test]
    fn metrics_scrapes_are_well_formed_deltas() {
        let state = state(FakeStatus { depth: 0, cap: 4, stopping: false });
        qisim_obs::counter_add("admin.test.scrapes", 3);
        let first = respond("GET /metrics HTTP/1.1\r\n\r\n", &state);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(first.contains("Content-Type: application/openmetrics-text"), "{first}");
        assert!(qisim_obs::openmetrics_is_well_formed(body_of(&first)), "{first}");
        // A second scrape with no new activity reports a zero delta for
        // the counter (when the obs feature records at all).
        let second = respond("GET /metrics HTTP/1.1\r\n\r\n", &state);
        assert!(qisim_obs::openmetrics_is_well_formed(body_of(&second)), "{second}");
        if qisim_obs::enabled() {
            assert!(body_of(&first).contains("admin_test_scrapes_total 3"), "{first}");
            assert!(body_of(&second).contains("admin_test_scrapes_total 0"), "{second}");
        }
    }

    #[test]
    fn statusz_carries_the_operator_overview() {
        let state = state(FakeStatus { depth: 2, cap: 8, stopping: false });
        let response = respond("GET /statusz HTTP/1.1\r\n\r\n", &state);
        let body = body_of(&response);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(body.contains(&format!("version = {}", env!("CARGO_PKG_VERSION"))), "{body}");
        assert!(body.contains("queue_depth = 2"), "{body}");
        assert!(body.contains("queue_cap = 8"), "{body}");
        assert!(body.contains("requests = 10; ok = 7; errors = 2; shed = 1"), "{body}");
        assert!(body.contains("memo: hits = "), "{body}");
    }

    #[test]
    fn head_completion_understands_both_line_endings() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.0\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\nHost: x\r\n"));
    }
}
