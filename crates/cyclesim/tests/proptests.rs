//! Property-based tests of the cycle-accurate scheduler's invariants.
//!
//! Requires the `proptest` crate, which the offline reference build
//! cannot fetch; enable with `cargo test --features proptest` on a
//! machine with registry access (and add the dev-dependency back).

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qisim_cyclesim::{simulate, Circuit, Op, OpKind, TimingModel};
use qisim_microarch::sfq::ReadoutSchedule;

/// A random circuit generator over a small gate alphabet.
fn random_circuit(qubits: u32, ops: Vec<(u8, u32, u32)>) -> Circuit {
    let mut c = Circuit::new(qubits, qubits);
    for (kind, a, b) in ops {
        let a = a % qubits;
        let b = b % qubits;
        match kind % 6 {
            0 => c.push(Op::one_q(OpKind::H, a)),
            1 => c.push(Op::one_q(OpKind::X, a)),
            2 => c.push(Op::one_q(OpKind::Rz(0.5), a)),
            3 => {
                if a != b {
                    c.push(Op::two_q(OpKind::Cz, a, b));
                }
            }
            4 => c.push(Op::measure(a, a)),
            _ => c.push(Op::one_q(OpKind::Ry(1.0), a)),
        }
    }
    c
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..6, 0u32..16, 0u32..16), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Per-qubit program order is preserved: no two events on the same
    /// qubit overlap, and they run in issue order.
    #[test]
    fn per_qubit_events_never_overlap(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        for q in 0..qubits {
            let mut events: Vec<_> = t
                .events()
                .iter()
                .filter(|e| e.qubit == q || e.other == Some(q))
                .collect();
            events.sort_by(|a, b| a.start_ns.partial_cmp(&b.start_ns).unwrap());
            for w in events.windows(2) {
                prop_assert!(
                    w[1].start_ns >= w[0].end_ns - 1e-9,
                    "qubit {q}: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// Program order per qubit is respected (op indices increase).
    #[test]
    fn program_order_is_respected(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        for q in 0..qubits {
            let mut last_end = 0.0f64;
            for e in t.events().iter().filter(|e| e.qubit == q || e.other == Some(q)) {
                // Events stored in commit order; for one qubit the start
                // must be at least the previous end.
                prop_assert!(e.start_ns >= last_end - 1e-9);
                last_end = e.end_ns;
            }
        }
    }

    /// Every op is scheduled exactly once and the makespan covers all.
    #[test]
    fn schedule_is_complete(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        prop_assert_eq!(t.events().len(), c.ops().len());
        let max_end = t.events().iter().map(|e| e.end_ns).fold(0.0f64, f64::max);
        prop_assert!((t.makespan_ns() - max_end).abs() < 1e-9);
        // Each op index appears exactly once.
        let mut seen = vec![false; c.ops().len()];
        for e in t.events() {
            prop_assert!(!seen[e.op_index], "op {} scheduled twice", e.op_index);
            seen[e.op_index] = true;
        }
    }

    /// Relaxing a structural hazard never lengthens the schedule: more
    /// FDM banks or per-qubit AWGs are at least as fast.
    #[test]
    fn fewer_hazards_never_hurt(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let tight = simulate(&c, &TimingModel::cmos_baseline());
        let loose = simulate(
            &c,
            &TimingModel {
                drive: qisim_cyclesim::sim::DriveModel::PerQubit,
                ..TimingModel::cmos_baseline()
            },
        );
        prop_assert!(loose.makespan_ns() <= tight.makespan_ns() + 1e-9);
    }

    /// Raising #BS never lengthens an SFQ schedule.
    #[test]
    fn more_broadcast_lanes_never_hurt(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let bs1 = simulate(&c, &TimingModel::sfq(1, ReadoutSchedule::baseline()));
        let bs8 = simulate(&c, &TimingModel::sfq(8, ReadoutSchedule::baseline()));
        prop_assert!(bs8.makespan_ns() <= bs1.makespan_ns() + 1e-9);
    }

    /// Activity factors are well-formed fractions.
    #[test]
    fn activity_factors_are_fractions(qubits in 2u32..9, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        let a = t.activity();
        for v in [a.drive_duty, a.per_qubit_gate_duty, a.cz_duty, a.readout_duty] {
            prop_assert!((0.0..=1.0).contains(&v), "activity {v}");
        }
    }

    /// Busy + idle always partitions the makespan.
    #[test]
    fn busy_idle_partition(qubits in 2u32..7, ops in ops_strategy()) {
        let c = random_circuit(qubits, ops);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        for q in 0..qubits {
            let sum = t.qubit_busy_ns(q) + t.qubit_idle_ns(q);
            prop_assert!((sum - t.makespan_ns()).abs() < 1e-6);
        }
    }
}
