//! Workload generators: the surface-code error-syndrome-measurement (ESM)
//! round that drives the scalability analysis (§6.1), and the
//! SupermarQ/ScaffCC-style benchmark set the workload-level validation
//! runs (§5.3, Fig. 11).

use crate::circuit::{Circuit, Op, OpKind};
use std::f64::consts::PI;

/// A stabilizer (ancilla) of the rotated surface code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// Ancilla qubit index within the patch.
    pub ancilla: u32,
    /// `true` for X-type (needs the H sandwich), `false` for Z-type.
    pub is_x: bool,
    /// Data-qubit indices per CZ layer (length 4; `None` = idle that layer).
    pub layer_neighbors: [Option<u32>; 4],
}

/// A rotated surface-code patch of distance `d`: `d²` data qubits and
/// `d²−1` stabilizer ancillas (Fig. 1a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    /// Code distance.
    pub d: u32,
    /// Stabilizers with their layer schedules.
    pub stabilizers: Vec<Stabilizer>,
}

impl Patch {
    /// Builds the distance-`d` rotated patch with the standard
    /// collision-free four-layer CZ schedule (X-plaquettes visit their
    /// data in N-shaped order, Z-plaquettes in mirrored order, so no data
    /// qubit is touched twice in one layer).
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn new(d: u32) -> Self {
        assert!(d >= 2, "code distance must be at least 2");
        let dd = d as i64;
        let data = |r: i64, c: i64| -> Option<u32> {
            if (0..dd).contains(&r) && (0..dd).contains(&c) {
                Some((r * dd + c) as u32)
            } else {
                None
            }
        };
        // Plaquette cells at (r, c) for r, c ∈ −1..d−1; cell corners are
        // data (r,c), (r,c+1), (r+1,c), (r+1,c+1). Checkerboard typing;
        // boundary half-plaquettes survive only where their type matches
        // the boundary (X on top/bottom, Z on left/right).
        let mut stabilizers = Vec::new();
        let mut next_ancilla = d * d;
        for r in -1..dd {
            for c in -1..dd {
                let is_x = (r + c).rem_euclid(2) == 0;
                let corners = [data(r, c), data(r, c + 1), data(r + 1, c), data(r + 1, c + 1)];
                let present = corners.iter().flatten().count();
                let keep = match present {
                    4 => true,
                    2 => {
                        let top_or_bottom = r == -1 || r == dd - 1;
                        let left_or_right = c == -1 || c == dd - 1;
                        (top_or_bottom && is_x && !left_or_right)
                            || (left_or_right && !is_x && !top_or_bottom)
                    }
                    _ => false,
                };
                if !keep {
                    continue;
                }
                // Layer order: X-plaquettes NW, NE, SW, SE; Z-plaquettes
                // NW, SW, NE, SE (the standard interleave that keeps each
                // data qubit on one CZ per layer).
                let [nw, ne, sw, se] = corners;
                let layer_neighbors = if is_x { [nw, ne, sw, se] } else { [nw, sw, ne, se] };
                stabilizers.push(Stabilizer { ancilla: next_ancilla, is_x, layer_neighbors });
                next_ancilla += 1;
            }
        }
        Patch { d, stabilizers }
    }

    /// Data-qubit count (`d²`).
    pub fn data_qubits(&self) -> u32 {
        self.d * self.d
    }

    /// Total physical qubits in the patch.
    pub fn total_qubits(&self) -> u32 {
        self.data_qubits() + self.stabilizers.len() as u32
    }

    /// Generates `rounds` ESM rounds as a circuit (Fig. 1b): X-ancillas
    /// get an H sandwich, four CZ layers run the stabilizer schedule, and
    /// every ancilla is measured.
    pub fn esm_circuit(&self, rounds: u32) -> Circuit {
        let n = self.total_qubits();
        let mut c = Circuit::named(&format!("esm-d{}-r{rounds}", self.d), n, n);
        for _ in 0..rounds {
            for s in &self.stabilizers {
                if s.is_x {
                    c.push(Op::one_q(OpKind::H, s.ancilla));
                }
            }
            for layer in 0..4 {
                for s in &self.stabilizers {
                    if let Some(dq) = s.layer_neighbors[layer] {
                        c.push(Op::two_q(OpKind::Cz, s.ancilla, dq));
                    }
                }
            }
            for s in &self.stabilizers {
                if s.is_x {
                    c.push(Op::one_q(OpKind::H, s.ancilla));
                }
            }
            for s in &self.stabilizers {
                c.push(Op::measure(s.ancilla, s.ancilla));
            }
        }
        c
    }
}

/// GHZ state preparation + measurement (SupermarQ).
pub fn ghz(n: u32) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::named(&format!("ghz-{n}"), n, n);
    c.push(Op::one_q(OpKind::H, 0));
    for q in 1..n {
        c.push(Op::two_q(OpKind::Cx, q - 1, q));
    }
    for q in 0..n {
        c.push(Op::measure(q, q));
    }
    c
}

/// Bernstein–Vazirani with an `n`-bit secret (ScaffCC-style).
pub fn bernstein_vazirani(n: u32, secret: u64) -> Circuit {
    assert!((1..=63).contains(&n), "secret width out of range");
    let mut c = Circuit::named(&format!("bv-{n}"), n + 1, n);
    // Oracle ancilla in |−>.
    c.push(Op::one_q(OpKind::X, n));
    c.push(Op::one_q(OpKind::H, n));
    for q in 0..n {
        c.push(Op::one_q(OpKind::H, q));
    }
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.push(Op::two_q(OpKind::Cx, q, n));
        }
    }
    for q in 0..n {
        c.push(Op::one_q(OpKind::H, q));
        c.push(Op::measure(q, q));
    }
    c
}

/// One QAOA layer on a ring MaxCut instance (SupermarQ-style proxy).
pub fn qaoa_ring(n: u32, gamma: f64, beta: f64) -> Circuit {
    assert!(n >= 3, "ring needs at least three vertices");
    let mut c = Circuit::named(&format!("qaoa-{n}"), n, n);
    for q in 0..n {
        c.push(Op::one_q(OpKind::H, q));
    }
    for q in 0..n {
        let other = (q + 1) % n;
        // ZZ(γ) via CX-Rz-CX.
        c.push(Op::two_q(OpKind::Cx, q, other));
        c.push(Op::one_q(OpKind::Rz(2.0 * gamma), other));
        c.push(Op::two_q(OpKind::Cx, q, other));
    }
    for q in 0..n {
        c.push(Op::one_q(OpKind::Rx(2.0 * beta), q));
        c.push(Op::measure(q, q));
    }
    c
}

/// Trotterized transverse-field Ising evolution (SupermarQ
/// Hamiltonian-simulation proxy): `steps` first-order Trotter steps on a
/// line of `n` spins.
pub fn hamiltonian_tfim(n: u32, steps: u32, dt: f64) -> Circuit {
    assert!(n >= 2 && steps >= 1, "need a chain and at least one step");
    let mut c = Circuit::named(&format!("hamsim-{n}x{steps}"), n, n);
    for _ in 0..steps {
        for q in 0..n {
            c.push(Op::one_q(OpKind::Rx(2.0 * dt), q));
        }
        for q in 0..n - 1 {
            c.push(Op::two_q(OpKind::Cx, q, q + 1));
            c.push(Op::one_q(OpKind::Rz(2.0 * dt), q + 1));
            c.push(Op::two_q(OpKind::Cx, q, q + 1));
        }
    }
    for q in 0..n {
        c.push(Op::measure(q, q));
    }
    c
}

/// Mermin–Bell inequality test circuit (SupermarQ).
pub fn mermin_bell(n: u32) -> Circuit {
    assert!(n >= 3, "Mermin-Bell needs at least three qubits");
    let mut c = Circuit::named(&format!("mermin-{n}"), n, n);
    c.push(Op::one_q(OpKind::H, 0));
    for q in 1..n {
        c.push(Op::two_q(OpKind::Cx, 0, q));
    }
    c.push(Op::one_q(OpKind::S, 0));
    for q in 0..n {
        c.push(Op::one_q(OpKind::H, q));
        c.push(Op::measure(q, q));
    }
    c
}

/// Hardware-efficient VQE ansatz layer (SupermarQ proxy): Ry rotations +
/// CZ entangler ladder, two layers.
pub fn vqe_proxy(n: u32) -> Circuit {
    assert!(n >= 2, "VQE needs at least two qubits");
    let mut c = Circuit::named(&format!("vqe-{n}"), n, n);
    for layer in 0..2u32 {
        for q in 0..n {
            let theta = 0.3 + 0.17 * (q + layer * n) as f64;
            c.push(Op::one_q(OpKind::Ry(theta), q));
        }
        for q in 0..n - 1 {
            c.push(Op::two_q(OpKind::Cz, q, q + 1));
        }
    }
    for q in 0..n {
        c.push(Op::measure(q, q));
    }
    c
}

/// Three-qubit phase-flip error-correction subroutine (SupermarQ's
/// error-correction benchmark).
pub fn phase_flip_code() -> Circuit {
    let mut c = Circuit::named("ecc-phaseflip", 5, 5);
    // Encode |+> into the phase-flip code.
    c.push(Op::one_q(OpKind::H, 0));
    c.push(Op::two_q(OpKind::Cx, 0, 1));
    c.push(Op::two_q(OpKind::Cx, 0, 2));
    for q in 0..3 {
        c.push(Op::one_q(OpKind::H, q));
    }
    // Syndrome extraction with two ancillas (3, 4).
    for (a, pair) in [(3u32, (0u32, 1u32)), (4, (1, 2))] {
        c.push(Op::one_q(OpKind::H, a));
        c.push(Op::two_q(OpKind::Cz, a, pair.0));
        c.push(Op::two_q(OpKind::Cz, a, pair.1));
        c.push(Op::one_q(OpKind::H, a));
        c.push(Op::measure(a, a));
    }
    for q in 0..3 {
        c.push(Op::one_q(OpKind::H, q));
        c.push(Op::measure(q, q));
    }
    c
}

/// Two-qubit Grover search (ScaffCC-style proxy, marked state `|11⟩`).
pub fn grover_2q() -> Circuit {
    let mut c = Circuit::named("grover-2", 2, 2);
    for q in 0..2 {
        c.push(Op::one_q(OpKind::H, q));
    }
    // Oracle: CZ marks |11>.
    c.push(Op::two_q(OpKind::Cz, 0, 1));
    // Diffusion.
    for q in 0..2 {
        c.push(Op::one_q(OpKind::H, q));
        c.push(Op::one_q(OpKind::Z, q));
    }
    c.push(Op::two_q(OpKind::Cz, 0, 1));
    for q in 0..2 {
        c.push(Op::one_q(OpKind::H, q));
        c.push(Op::measure(q, q));
    }
    c
}

/// Ripple-carry increment on `n` bits built from CX chains (ScaffCC-style
/// arithmetic proxy; Toffoli-free approximation).
pub fn adder_proxy(n: u32) -> Circuit {
    assert!(n >= 2, "adder needs at least two bits");
    let mut c = Circuit::named(&format!("adder-{n}"), n, n);
    c.push(Op::one_q(OpKind::X, 0));
    for q in 0..n - 1 {
        c.push(Op::two_q(OpKind::Cx, q, q + 1));
        c.push(Op::one_q(OpKind::T, q + 1));
        c.push(Op::two_q(OpKind::Cx, q, q + 1));
    }
    for q in 0..n {
        c.push(Op::measure(q, q));
    }
    c
}

/// The nine-benchmark validation set of Fig. 11, sized ≤ 16 qubits.
pub fn validation_suite() -> Vec<Circuit> {
    vec![
        ghz(8),
        bernstein_vazirani(7, 0b1011010),
        qaoa_ring(8, 0.7, 0.4),
        hamiltonian_tfim(6, 2, 0.3),
        mermin_bell(5),
        vqe_proxy(8),
        phase_flip_code(),
        grover_2q(),
        adder_proxy(6),
    ]
}

/// A π/2-heavy random-ish single-qubit layer plus CZ brick pattern used
/// by stress tests; `depth` brick layers on `n` qubits.
pub fn brickwork(n: u32, depth: u32) -> Circuit {
    assert!(n >= 2, "brickwork needs at least two qubits");
    let mut c = Circuit::named(&format!("brickwork-{n}x{depth}"), n, n);
    for layer in 0..depth {
        for q in 0..n {
            let theta = PI / 2.0 * (1.0 + ((q * 31 + layer * 17) % 7) as f64 / 7.0);
            c.push(Op::one_q(OpKind::Ry(theta), q));
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            c.push(Op::two_q(OpKind::Cz, q, q + 1));
            q += 2;
        }
    }
    for q in 0..n {
        c.push(Op::measure(q, q));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn patch_has_d_squared_minus_one_stabilizers() {
        for d in [2u32, 3, 5, 7, 9, 23] {
            let p = Patch::new(d);
            assert_eq!(p.stabilizers.len() as u32, d * d - 1, "d = {d}");
            assert_eq!(p.total_qubits(), 2 * d * d - 1);
        }
    }

    #[test]
    fn x_and_z_stabilizers_balance() {
        let p = Patch::new(5);
        let x = p.stabilizers.iter().filter(|s| s.is_x).count();
        let z = p.stabilizers.len() - x;
        assert_eq!(x, z, "X {x} vs Z {z}");
    }

    #[test]
    fn cz_layers_are_collision_free() {
        for d in [3u32, 5, 7] {
            let p = Patch::new(d);
            for layer in 0..4 {
                let mut used: HashSet<u32> = HashSet::new();
                for s in &p.stabilizers {
                    if let Some(dq) = s.layer_neighbors[layer] {
                        assert!(used.insert(dq), "data {dq} reused in layer {layer} (d={d})");
                    }
                }
            }
        }
    }

    #[test]
    fn weight_two_stabilizers_sit_on_the_right_boundaries() {
        let p = Patch::new(5);
        for s in &p.stabilizers {
            let weight = s.layer_neighbors.iter().flatten().count();
            assert!(weight == 2 || weight == 4);
        }
        let w2 = p.stabilizers.iter().filter(|s| s.layer_neighbors.iter().flatten().count() == 2);
        assert_eq!(w2.count(), 2 * (5 - 1));
    }

    #[test]
    fn esm_circuit_has_expected_op_mix() {
        let d = 3u32;
        let p = Patch::new(d);
        let c = p.esm_circuit(1);
        let n_stab = (d * d - 1) as usize;
        let n_x = p.stabilizers.iter().filter(|s| s.is_x).count();
        assert_eq!(c.measure_count(), n_stab);
        assert_eq!(c.drive_gate_count(), 2 * n_x);
        // CZ count = total stabilizer weight.
        let weight: usize =
            p.stabilizers.iter().map(|s| s.layer_neighbors.iter().flatten().count()).sum();
        assert_eq!(c.two_qubit_count(), weight);
    }

    #[test]
    fn esm_rounds_scale_linearly() {
        let p = Patch::new(3);
        let c1 = p.esm_circuit(1);
        let c3 = p.esm_circuit(3);
        assert_eq!(c3.ops().len(), 3 * c1.ops().len());
    }

    #[test]
    fn validation_suite_is_nine_small_benchmarks() {
        let suite = validation_suite();
        assert_eq!(suite.len(), 9);
        for c in &suite {
            assert!(c.qubits() <= 16, "{} uses {} qubits", c.name, c.qubits());
            assert!(c.measure_count() > 0, "{} never measures", c.name);
        }
    }

    #[test]
    fn bv_oracle_matches_secret_weight() {
        let c = bernstein_vazirani(6, 0b101101);
        assert_eq!(c.two_qubit_count(), 4);
    }

    #[test]
    fn ghz_shape() {
        let c = ghz(10);
        assert_eq!(c.two_qubit_count(), 9);
        assert_eq!(c.measure_count(), 10);
    }

    #[test]
    fn brickwork_alternates_offsets() {
        let c = brickwork(6, 2);
        // Layer 0: pairs (0,1),(2,3),(4,5); layer 1: (1,2),(3,4).
        assert_eq!(c.two_qubit_count(), 5);
    }
}
