//! OpenQASM 2 subset front-end (§4.2: "we compile the input
//! OpenQASM-based workload to the architecture-specific executable").
//!
//! Supported grammar (enough for the SupermarQ/ScaffCC-style benchmarks):
//!
//! ```qasm
//! OPENQASM 2.0;
//! include "qelib1.inc";
//! qreg q[4];
//! creg c[4];
//! h q[0];
//! rz(pi/4) q[1];
//! cx q[0],q[1];
//! cz q[2],q[3];
//! barrier q;
//! measure q[0] -> c[0];
//! ```
//!
//! Angle expressions support numeric literals, `pi`, unary minus, `*` and
//! `/` with parentheses-free precedence (left to right, as qelib usage
//! needs nothing richer).

use crate::circuit::{Circuit, Op, OpKind};
use std::fmt;

/// Error raised while parsing a QASM program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError { line, message: message.into() }
}

/// Parses an angle expression: `pi`, numbers, unary minus, `*`, `/`.
fn parse_angle(src: &str, line: usize) -> Result<f64, ParseQasmError> {
    let src = src.trim();
    if src.is_empty() {
        return Err(err(line, "empty angle expression"));
    }
    // Tokenize into factors joined by * and /.
    let mut value = 1.0f64;
    let mut sign = 1.0f64;
    let mut op = '*';
    let mut token = String::new();
    let apply = |value: &mut f64, op: char, token: &str| -> Result<(), ParseQasmError> {
        let t = token.trim();
        if t.is_empty() {
            return Err(err(line, "missing operand in angle expression"));
        }
        let v = if t.eq_ignore_ascii_case("pi") {
            std::f64::consts::PI
        } else {
            t.parse::<f64>().map_err(|_| err(line, format!("bad number `{t}`")))?
        };
        match op {
            '*' => *value *= v,
            '/' => {
                if v == 0.0 {
                    return Err(err(line, "division by zero in angle"));
                }
                *value /= v;
            }
            _ => unreachable!(),
        }
        Ok(())
    };
    let mut chars = src.chars().peekable();
    // Leading sign.
    if let Some('-') = chars.peek() {
        sign = -1.0;
        chars.next();
    } else if let Some('+') = chars.peek() {
        chars.next();
    }
    for ch in chars {
        match ch {
            '*' | '/' => {
                apply(&mut value, op, &token)?;
                token.clear();
                op = ch;
            }
            c if c.is_whitespace() => {}
            c => token.push(c),
        }
    }
    apply(&mut value, op, &token)?;
    Ok(sign * value)
}

/// Parses `name[index]` into `(name, index)`.
fn parse_ref(src: &str, line: usize) -> Result<(String, u32), ParseQasmError> {
    let src = src.trim();
    let open = src.find('[').ok_or_else(|| err(line, format!("expected `reg[i]`, got `{src}`")))?;
    let close = src.find(']').ok_or_else(|| err(line, format!("missing `]` in `{src}`")))?;
    if close < open {
        return Err(err(line, format!("malformed reference `{src}`")));
    }
    let name = src[..open].trim().to_string();
    let idx: u32 = src[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, format!("bad index in `{src}`")))?;
    Ok((name, idx))
}

/// Parses an OpenQASM 2 subset program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on any syntax the subset does not cover,
/// undeclared registers, or out-of-range indices.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qisim_cyclesim::qasm::ParseQasmError> {
/// let c = qisim_cyclesim::qasm::parse(
///     "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];",
/// )?;
/// assert_eq!(c.qubits(), 2);
/// assert_eq!(c.ops().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut qreg: Option<(String, u32)> = None;
    let mut creg: Option<(String, u32)> = None;
    let mut ops: Vec<Op> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find("//") {
            text = &text[..pos];
        }
        for stmt in text.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let (name, size) = parse_ref(rest, line)?;
                if qreg.is_some() {
                    return Err(err(line, "only one qreg is supported"));
                }
                qreg = Some((name, size));
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("creg") {
                let (name, size) = parse_ref(rest, line)?;
                if creg.is_some() {
                    return Err(err(line, "only one creg is supported"));
                }
                creg = Some((name, size));
                continue;
            }
            if stmt.starts_with("barrier") {
                ops.push(Op { kind: OpKind::Barrier, qubit: 0, other: None, cbit: None });
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("measure") {
                let parts: Vec<&str> = rest.split("->").collect();
                if parts.len() != 2 {
                    return Err(err(line, "measure needs `q[i] -> c[j]`"));
                }
                let (_, q) = parse_ref(parts[0], line)?;
                let (_, c) = parse_ref(parts[1], line)?;
                ops.push(Op::measure(q, c));
                continue;
            }

            // Gate application: `name(args)? operands`.
            let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
                Some(pos) => (&stmt[..pos], &stmt[pos..]),
                None => return Err(err(line, format!("unrecognized statement `{stmt}`"))),
            };
            let (gate_name, angle) = match head.find('(') {
                Some(open) => {
                    let close = head
                        .rfind(')')
                        .ok_or_else(|| err(line, format!("missing `)` in `{head}`")))?;
                    (&head[..open], Some(parse_angle(&head[open + 1..close], line)?))
                }
                None => (head, None),
            };
            let qs: Vec<(String, u32)> =
                operands.split(',').map(|s| parse_ref(s, line)).collect::<Result<_, _>>()?;

            let one = |kind: OpKind| -> Result<Op, ParseQasmError> {
                if qs.len() != 1 {
                    return Err(err(line, format!("`{gate_name}` takes one operand")));
                }
                Ok(Op::one_q(kind, qs[0].1))
            };
            let two = |kind: OpKind| -> Result<Op, ParseQasmError> {
                if qs.len() != 2 {
                    return Err(err(line, format!("`{gate_name}` takes two operands")));
                }
                Ok(Op::two_q(kind, qs[0].1, qs[1].1))
            };
            let need_angle =
                || angle.ok_or_else(|| err(line, format!("`{gate_name}` needs an angle")));

            let op = match gate_name {
                "h" => one(OpKind::H)?,
                "x" => one(OpKind::X)?,
                "y" => one(OpKind::Y)?,
                "z" => one(OpKind::Z)?,
                "s" => one(OpKind::S)?,
                "sdg" => one(OpKind::Sdg)?,
                "t" => one(OpKind::T)?,
                "tdg" => one(OpKind::Tdg)?,
                "rx" => one(OpKind::Rx(need_angle()?))?,
                "ry" => one(OpKind::Ry(need_angle()?))?,
                "rz" | "u1" | "p" => one(OpKind::Rz(need_angle()?))?,
                "cx" | "CX" => two(OpKind::Cx)?,
                "cz" => two(OpKind::Cz)?,
                other => return Err(err(line, format!("unsupported gate `{other}`"))),
            };
            ops.push(op);
        }
    }

    let (_, nq) = qreg.ok_or_else(|| err(0, "no qreg declared"))?;
    let nc = creg.map(|(_, n)| n).unwrap_or(0);
    let mut circuit = Circuit::new(nq, nc.max(nq));
    for op in ops {
        circuit.push(op);
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn parses_bell_circuit() {
        let c = parse(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];",
        )
        .unwrap();
        assert_eq!(c.qubits(), 2);
        assert_eq!(c.ops().len(), 4);
        assert_eq!(c.measure_count(), 2);
    }

    #[test]
    fn parses_angles() {
        assert!((parse_angle("pi/2", 1).unwrap() - PI / 2.0).abs() < 1e-15);
        assert!((parse_angle("-pi/4", 1).unwrap() + PI / 4.0).abs() < 1e-15);
        assert!((parse_angle("2*pi", 1).unwrap() - 2.0 * PI).abs() < 1e-15);
        assert!((parse_angle("0.75", 1).unwrap() - 0.75).abs() < 1e-15);
        assert!((parse_angle("3*pi/8", 1).unwrap() - 3.0 * PI / 8.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_angles() {
        assert!(parse_angle("", 3).is_err());
        assert!(parse_angle("pi/0", 3).is_err());
        assert!(parse_angle("frobnicate", 3).is_err());
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let c = parse("OPENQASM 2.0;\nqreg q[1]; // the register\n  x q[0]; // flip\n").unwrap();
        assert_eq!(c.ops().len(), 1);
    }

    #[test]
    fn rotation_gates_carry_angles() {
        let c = parse("OPENQASM 2.0;\nqreg q[1];\nrz(pi/8) q[0];\nrx(-pi) q[0];").unwrap();
        match c.ops()[0].kind {
            OpKind::Rz(t) => assert!((t - PI / 8.0).abs() < 1e-15),
            other => panic!("expected rz, got {other:?}"),
        }
        match c.ops()[1].kind {
            OpKind::Rx(t) => assert!((t + PI).abs() < 1e-15),
            other => panic!("expected rx, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("OPENQASM 2.0;\nqreg q[2];\nfrob q[0];").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unsupported gate"));
    }

    #[test]
    fn missing_qreg_is_an_error() {
        assert!(parse("OPENQASM 2.0;\nh q[0];").is_err());
    }

    #[test]
    fn out_of_range_index_panics_via_circuit() {
        // Circuit::push validates ranges; the parser surfaces that as a
        // panic today, so keep the input valid here and check the count.
        let c = parse("OPENQASM 2.0;\nqreg q[3];\ncz q[0],q[2];").unwrap();
        assert_eq!(c.two_qubit_count(), 1);
    }

    #[test]
    fn barrier_parses() {
        let c = parse("OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbarrier q;\nh q[1];").unwrap();
        assert_eq!(c.ops()[1].kind, OpKind::Barrier);
    }
}
