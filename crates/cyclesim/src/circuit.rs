//! Gate-level intermediate representation.
//!
//! The cycle-accurate simulator (§4.2) consumes a flat instruction list;
//! this module defines that IR plus the [`Circuit`] container the QASM
//! front-end and the workload generators both produce.

use std::fmt;

/// A physical-qubit-level operation kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S (`Rz(π/2)` up to phase).
    S,
    /// S-dagger.
    Sdg,
    /// T gate (`Rz(π/4)` up to phase).
    T,
    /// T-dagger.
    Tdg,
    /// X-axis rotation by the angle in radians.
    Rx(f64),
    /// Y-axis rotation by the angle in radians.
    Ry(f64),
    /// Z-axis rotation by the angle in radians (virtual on CMOS QCIs).
    Rz(f64),
    /// The SFQ-friendly fused basis gate `Ry(π/2)·Rz(φ)` (Opt-6).
    RyPi2Rz(f64),
    /// Controlled-Z between `qubit` and `other`.
    Cz,
    /// Controlled-X between `qubit` (control) and `other` (target).
    Cx,
    /// Dispersive / JPM readout into a classical bit.
    Measure,
    /// Scheduling barrier across all qubits.
    Barrier,
}

impl OpKind {
    /// Whether this is a two-qubit operation.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, OpKind::Cz | OpKind::Cx)
    }

    /// Whether this occupies the drive circuit (single-qubit microwave /
    /// bitstream gates). `Rz` is virtual — zero drive time — on QCIs with
    /// the paper's extended NCO.
    pub fn is_drive(&self) -> bool {
        matches!(
            self,
            OpKind::H | OpKind::X | OpKind::Y | OpKind::Rx(_) | OpKind::Ry(_) | OpKind::RyPi2Rz(_)
        )
    }

    /// Whether this is a virtual (zero-duration) phase update.
    pub fn is_virtual_rz(&self) -> bool {
        matches!(
            self,
            OpKind::Z | OpKind::S | OpKind::Sdg | OpKind::T | OpKind::Tdg | OpKind::Rz(_)
        )
    }

    /// A coarse type label used for SFQ #BS structural hazards: gates with
    /// the same label can share one broadcast bitstream.
    pub fn broadcast_class(&self) -> u64 {
        fn angle_class(theta: f64) -> u64 {
            // Quantize to the 256-entry φ table the bitstream generator has.
            let turns = (theta / std::f64::consts::TAU).rem_euclid(1.0);
            (turns * 256.0).round() as u64 % 256
        }
        match self {
            OpKind::H => 1,
            OpKind::X => 2,
            OpKind::Y => 3,
            OpKind::Rx(t) => 1000 + angle_class(*t),
            OpKind::Ry(t) => 2000 + angle_class(*t),
            OpKind::RyPi2Rz(t) => 3000 + angle_class(*t),
            _ => 0,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Rx(t) => write!(f, "rx({t:.4})"),
            OpKind::Ry(t) => write!(f, "ry({t:.4})"),
            OpKind::Rz(t) => write!(f, "rz({t:.4})"),
            OpKind::RyPi2Rz(t) => write!(f, "ry90rz({t:.4})"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// One instruction of a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Primary qubit.
    pub qubit: u32,
    /// Second qubit for two-qubit gates.
    pub other: Option<u32>,
    /// Classical bit for measurements.
    pub cbit: Option<u32>,
}

impl Op {
    /// Single-qubit operation.
    pub fn one_q(kind: OpKind, qubit: u32) -> Self {
        assert!(!kind.is_two_qubit(), "two-qubit kind needs Op::two_q");
        Op { kind, qubit, other: None, cbit: None }
    }

    /// Two-qubit operation.
    pub fn two_q(kind: OpKind, qubit: u32, other: u32) -> Self {
        assert!(kind.is_two_qubit(), "one-qubit kind passed to Op::two_q");
        assert_ne!(qubit, other, "two-qubit gate needs distinct qubits");
        Op { kind, qubit, other: Some(other), cbit: None }
    }

    /// Measurement into classical bit `cbit`.
    pub fn measure(qubit: u32, cbit: u32) -> Self {
        Op { kind: OpKind::Measure, qubit, other: None, cbit: Some(cbit) }
    }

    /// All qubits this op touches.
    pub fn qubits(&self) -> impl Iterator<Item = u32> {
        std::iter::once(self.qubit).chain(self.other)
    }
}

/// A quantum circuit: a qubit count, a classical-bit count, and a flat
/// program-order instruction list.
///
/// # Examples
///
/// ```
/// use qisim_cyclesim::circuit::{Circuit, Op, OpKind};
///
/// let mut c = Circuit::new(2, 2);
/// c.push(Op::one_q(OpKind::H, 0));
/// c.push(Op::two_q(OpKind::Cx, 0, 1));
/// c.push(Op::measure(0, 0));
/// c.push(Op::measure(1, 1));
/// assert_eq!(c.ops().len(), 4);
/// assert_eq!(c.two_qubit_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    qubits: u32,
    cbits: u32,
    ops: Vec<Op>,
    /// Human-readable name for reports.
    pub name: String,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(qubits: u32, cbits: u32) -> Self {
        Circuit { qubits, cbits, ops: Vec::new(), name: String::from("circuit") }
    }

    /// Creates an empty named circuit.
    pub fn named(name: &str, qubits: u32, cbits: u32) -> Self {
        Circuit { qubits, cbits, ops: Vec::new(), name: name.into() }
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the op references a qubit or classical bit out of range.
    pub fn push(&mut self, op: Op) {
        for q in op.qubits() {
            assert!(q < self.qubits, "qubit {q} out of range ({} qubits)", self.qubits);
        }
        if let Some(c) = op.cbit {
            assert!(c < self.cbits, "cbit {c} out of range ({} cbits)", self.cbits);
        }
        self.ops.push(op);
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// Number of classical bits.
    pub fn cbits(&self) -> u32 {
        self.cbits
    }

    /// The instruction list in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Count of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_two_qubit()).count()
    }

    /// Count of measurements.
    pub fn measure_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Measure).count()
    }

    /// Count of drive-occupying single-qubit gates.
    pub fn drive_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind.is_drive()).count()
    }

    /// Rewrites `H` followed by `Rz`/`S`/`T` on the same qubit into the
    /// fused `Ry(π/2)·Rz` basis (the Opt-6 compression; §6.4.1). Returns
    /// the number of fused pairs.
    pub fn fuse_h_rz(&mut self) -> usize {
        use std::f64::consts::PI;
        let mut fused = 0;
        let mut out: Vec<Op> = Vec::with_capacity(self.ops.len());
        for op in self.ops.drain(..) {
            let angle = match op.kind {
                OpKind::Rz(t) => Some(t),
                OpKind::S => Some(PI / 2.0),
                OpKind::Sdg => Some(-PI / 2.0),
                OpKind::T => Some(PI / 4.0),
                OpKind::Tdg => Some(-PI / 4.0),
                OpKind::Z => Some(PI),
                _ => None,
            };
            if let Some(phi) = angle {
                if let Some(prev) = out.last_mut() {
                    if prev.kind == OpKind::H && prev.qubit == op.qubit {
                        prev.kind = OpKind::RyPi2Rz(phi);
                        fused += 1;
                        continue;
                    }
                }
            }
            out.push(op);
        }
        self.ops = out;
        fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn op_classification() {
        assert!(OpKind::Cz.is_two_qubit());
        assert!(!OpKind::H.is_two_qubit());
        assert!(OpKind::H.is_drive());
        assert!(OpKind::Rz(0.3).is_virtual_rz());
        assert!(!OpKind::Rz(0.3).is_drive());
    }

    #[test]
    fn broadcast_class_groups_equal_angles() {
        assert_eq!(OpKind::Ry(PI / 4.0).broadcast_class(), OpKind::Ry(PI / 4.0).broadcast_class());
        assert_ne!(OpKind::Ry(PI / 4.0).broadcast_class(), OpKind::Ry(PI / 2.0).broadcast_class());
        assert_ne!(OpKind::Rx(PI / 4.0).broadcast_class(), OpKind::Ry(PI / 4.0).broadcast_class());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2, 0);
        c.push(Op::one_q(OpKind::X, 2));
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn self_cz_panics() {
        let _ = Op::two_q(OpKind::Cz, 1, 1);
    }

    #[test]
    fn fuse_h_rz_compresses_lattice_surgery_pairs() {
        let mut c = Circuit::new(2, 0);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::one_q(OpKind::T, 0));
        c.push(Op::one_q(OpKind::H, 1));
        c.push(Op::one_q(OpKind::X, 1)); // not fusable
        let fused = c.fuse_h_rz();
        assert_eq!(fused, 1);
        assert_eq!(c.ops().len(), 3);
        assert!(matches!(c.ops()[0].kind, OpKind::RyPi2Rz(t) if (t - PI / 4.0).abs() < 1e-12));
    }

    #[test]
    fn fuse_requires_same_qubit() {
        let mut c = Circuit::new(2, 0);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::one_q(OpKind::T, 1));
        assert_eq!(c.fuse_h_rz(), 0);
        assert_eq!(c.ops().len(), 2);
    }

    #[test]
    fn counting_helpers() {
        let mut c = Circuit::new(3, 3);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::one_q(OpKind::Rz(0.1), 0));
        c.push(Op::two_q(OpKind::Cz, 0, 1));
        c.push(Op::measure(2, 2));
        assert_eq!(c.drive_gate_count(), 1);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.measure_count(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpKind::H.to_string(), "h");
        assert_eq!(OpKind::Rz(0.5).to_string(), "rz(0.5000)");
    }
}
