//! The cycle-accurate simulator (§4.2).
//!
//! Instructions are held in per-qubit FIFO queues; the simulator repeatedly
//! executes the dependency-free queue heads (true dependencies via the
//! *remaining-time table*, i.e. per-qubit ready times) subject to the
//! structural hazards of the modelled QCI:
//!
//! * **CMOS FDM drive** — one drive line serves a group of qubits but only
//!   two digital banks generate gates at a time (Horse Ridge I);
//! * **SFQ broadcast drive** — up to #BS *distinct* gate types can be in
//!   flight per group; qubits wanting the same type join the broadcast;
//! * **SFQ shared JPM readout** — measurements in a readout group run
//!   through the [`ReadoutSchedule`]'s serialized/pipelined stages.
//!
//! The output [`Timeline`] carries per-gate start/end times (consumed by
//! the decoherence-error injector, §4.5) and per-unit activity factors
//! (consumed by the runtime-power model, §4.3).

use crate::circuit::{Circuit, Op, OpKind};
use qisim_microarch::sfq::ReadoutSchedule;
use std::collections::VecDeque;

/// Drive-circuit structural-hazard model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriveModel {
    /// Frequency-multiplexed CMOS drive: `group` qubits per line,
    /// `banks` simultaneous gates (Horse Ridge I has 2).
    CmosFdm {
        /// Qubits sharing one drive line.
        group: u32,
        /// Concurrent digital banks per line.
        banks: u32,
    },
    /// SFQ broadcast: within a `group`, at most `bs` distinct gate types
    /// in flight; same-type gates join one broadcast for free.
    SfqBroadcast {
        /// Qubits sharing one generator/controller group.
        group: u32,
        /// Broadcast parallelism #BS.
        bs: u32,
    },
    /// One AWG per qubit (photonic-link 300 K design): no hazard.
    PerQubit,
}

/// Readout structural model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadoutModel {
    /// Dispersive FDM readout: all qubits of a line read in parallel for
    /// `duration_ns`.
    Parallel {
        /// Readout duration in ns.
        duration_ns: f64,
    },
    /// SFQ JPM readout through a shared/pipelined schedule per group of 8.
    Sfq {
        /// The four-step schedule.
        schedule: ReadoutSchedule,
        /// Qubits per readout group.
        group: u32,
    },
}

/// Gate latencies + hazards of one QCI — everything the timing simulation
/// needs to know about the hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Single-qubit (drive) gate latency in ns.
    pub one_q_ns: f64,
    /// Two-qubit (CZ/CX) latency in ns.
    pub two_q_ns: f64,
    /// Drive hazard model.
    pub drive: DriveModel,
    /// Readout model.
    pub readout: ReadoutModel,
}

impl TimingModel {
    /// The baseline 4 K CMOS QCI (25/50/517 ns, FDM 32, 2 banks).
    pub fn cmos_baseline() -> Self {
        TimingModel {
            one_q_ns: 25.0,
            two_q_ns: 50.0,
            drive: DriveModel::CmosFdm { group: 32, banks: 2 },
            readout: ReadoutModel::Parallel { duration_ns: 517.0 },
        }
    }

    /// A CMOS QCI with custom FDM degree and readout time (Opt-7 sweeps).
    pub fn cmos(fdm: u32, readout_ns: f64) -> Self {
        TimingModel {
            drive: DriveModel::CmosFdm { group: fdm, banks: 2 },
            readout: ReadoutModel::Parallel { duration_ns: readout_ns },
            ..TimingModel::cmos_baseline()
        }
    }

    /// An SFQ QCI with the given #BS and readout schedule.
    pub fn sfq(bs: u32, schedule: ReadoutSchedule) -> Self {
        TimingModel {
            one_q_ns: 25.0,
            two_q_ns: 50.0,
            drive: DriveModel::SfqBroadcast { group: 8, bs },
            readout: ReadoutModel::Sfq { schedule, group: 8 },
        }
    }
}

/// One scheduled gate occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateEvent {
    /// Index into the source circuit's op list.
    pub op_index: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Primary qubit.
    pub qubit: u32,
    /// Partner qubit for two-qubit gates.
    pub other: Option<u32>,
    /// Start time in ns.
    pub start_ns: f64,
    /// End time in ns.
    pub end_ns: f64,
}

impl GateEvent {
    /// Gate duration in ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// Per-unit activity factors extracted from a timeline (duty cycles the
/// runtime-power model multiplies into dynamic energies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActivityFactors {
    /// Fraction of time an average drive group is generating gates.
    pub drive_duty: f64,
    /// Fraction of time an average qubit is being singly driven.
    pub per_qubit_gate_duty: f64,
    /// Fraction of time an average qubit's pulse circuit is firing.
    pub cz_duty: f64,
    /// Fraction of time an average qubit is being read out.
    pub readout_duty: f64,
}

/// The simulation result: scheduled events plus derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    events: Vec<GateEvent>,
    makespan_ns: f64,
    qubits: u32,
    drive_groups: u32,
}

impl Timeline {
    /// Scheduled events in commit order.
    pub fn events(&self) -> &[GateEvent] {
        &self.events
    }

    /// Total schedule length in ns.
    pub fn makespan_ns(&self) -> f64 {
        self.makespan_ns
    }

    /// Number of qubits simulated.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// Total busy time of one qubit in ns.
    pub fn qubit_busy_ns(&self, qubit: u32) -> f64 {
        self.events
            .iter()
            .filter(|e| e.qubit == qubit || e.other == Some(qubit))
            .map(GateEvent::duration_ns)
            .sum()
    }

    /// Idle (decohering) time of one qubit in ns.
    pub fn qubit_idle_ns(&self, qubit: u32) -> f64 {
        (self.makespan_ns - self.qubit_busy_ns(qubit)).max(0.0)
    }

    /// Derives duty-cycle activity factors.
    pub fn activity(&self) -> ActivityFactors {
        if self.makespan_ns <= 0.0 {
            return ActivityFactors::default();
        }
        let span = self.makespan_ns;
        let nq = self.qubits as f64;
        let mut drive = 0.0;
        let mut cz = 0.0;
        let mut readout = 0.0;
        for e in &self.events {
            let d = e.duration_ns();
            if e.kind.is_drive() {
                drive += d;
            } else if e.kind.is_two_qubit() {
                cz += d;
            } else if e.kind == OpKind::Measure {
                readout += d;
            }
        }
        ActivityFactors {
            drive_duty: (drive / (self.drive_groups as f64 * span)).min(1.0),
            per_qubit_gate_duty: drive / (nq * span),
            cz_duty: cz / (nq * span),
            readout_duty: readout / (nq * span),
        }
    }
}

#[derive(Debug, Clone)]
struct SfqBatch {
    start_ns: f64,
    index: usize,
    free_ns: f64,
}

/// Runs the cycle-accurate simulation of `circuit` on `model`.
///
/// # Panics
///
/// Panics if the circuit deadlocks (cannot happen for circuits built
/// through [`Circuit::push`], which validates qubit indices).
pub fn simulate(circuit: &Circuit, model: &TimingModel) -> Timeline {
    qisim_obs::span!("cyclesim.simulate");
    qisim_obs::counter!("cyclesim.circuits");
    qisim_obs::counter!("cyclesim.ops", circuit.ops().len() as u64);
    let nq = circuit.qubits() as usize;
    let ops = circuit.ops();

    // Per-qubit FIFO instruction queues (barriers enter every queue).
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); nq];
    for (i, op) in ops.iter().enumerate() {
        if op.kind == OpKind::Barrier {
            for q in &mut queues {
                q.push_back(i);
            }
        } else {
            for q in op.qubits() {
                queues[q as usize].push_back(i);
            }
        }
    }

    // Remaining-time table: when each qubit becomes free.
    let mut ready = vec![0.0f64; nq];

    // Structural state.
    let drive_group_size = match model.drive {
        DriveModel::CmosFdm { group, .. } | DriveModel::SfqBroadcast { group, .. } => {
            group as usize
        }
        DriveModel::PerQubit => 1,
    };
    let n_drive_groups = nq.div_ceil(drive_group_size).max(1);
    let mut cmos_banks: Vec<Vec<f64>> = match model.drive {
        DriveModel::CmosFdm { banks, .. } => vec![vec![0.0; banks as usize]; n_drive_groups],
        _ => Vec::new(),
    };
    // SFQ: active (end, class, start) triples per group.
    let mut sfq_active: Vec<Vec<(f64, u64, f64)>> = match model.drive {
        DriveModel::SfqBroadcast { .. } => vec![Vec::new(); n_drive_groups],
        _ => Vec::new(),
    };
    let readout_group_size = match model.readout {
        ReadoutModel::Sfq { group, .. } => group as usize,
        ReadoutModel::Parallel { .. } => 8,
    };
    let n_readout_groups = nq.div_ceil(readout_group_size).max(1);
    let mut sfq_batches: Vec<Option<SfqBatch>> = vec![None; n_readout_groups];

    let mut events: Vec<GateEvent> = Vec::with_capacity(ops.len());
    let mut makespan = 0.0f64;
    // One unit of work per queue entry (two-qubit ops and barriers occupy
    // several queues).
    let mut remaining: usize = queues.iter().map(VecDeque::len).sum();

    while remaining > 0 {
        // Find the executable head with the earliest feasible start.
        let mut best: Option<(f64, f64, usize)> = None; // (start, end, op_index)
        for q in 0..nq {
            let Some(&idx) = queues[q].front() else { continue };
            let op = &ops[idx];
            // Two-qubit ops and barriers must head every involved queue.
            let involved: Vec<usize> = if op.kind == OpKind::Barrier {
                (0..nq).collect()
            } else {
                op.qubits().map(|x| x as usize).collect()
            };
            if !involved.iter().all(|&x| queues[x].front() == Some(&idx)) {
                continue;
            }
            let dep = involved.iter().map(|&x| ready[x]).fold(0.0f64, f64::max);
            let (start, end) = reserve_probe(
                op,
                dep,
                model,
                drive_group_size,
                &cmos_banks,
                &sfq_active,
                readout_group_size,
                &sfq_batches,
            );
            if best.is_none_or(|(s, _, _)| start < s) {
                best = Some((start, end, idx));
            }
            // Only consider each op once even if it heads several queues.
        }
        let (start, end, idx) = best.expect("scheduler deadlock: no executable queue head");
        let op = &ops[idx];

        // Commit the reservation.
        commit(
            op,
            start,
            end,
            model,
            drive_group_size,
            &mut cmos_banks,
            &mut sfq_active,
            readout_group_size,
            &mut sfq_batches,
        );
        let involved: Vec<usize> = if op.kind == OpKind::Barrier {
            (0..nq).collect()
        } else {
            op.qubits().map(|x| x as usize).collect()
        };
        for &x in &involved {
            queues[x].pop_front();
            ready[x] = ready[x].max(end);
            remaining -= 1;
        }
        makespan = makespan.max(end);
        if op.kind != OpKind::Barrier {
            events.push(GateEvent {
                op_index: idx,
                kind: op.kind,
                qubit: op.qubit,
                other: op.other,
                start_ns: start,
                end_ns: end,
            });
        }
    }

    qisim_obs::observe!("cyclesim.makespan_ns", makespan);
    Timeline {
        events,
        makespan_ns: makespan,
        qubits: circuit.qubits(),
        drive_groups: n_drive_groups as u32,
    }
}

#[allow(clippy::too_many_arguments)]
fn reserve_probe(
    op: &Op,
    dep: f64,
    model: &TimingModel,
    drive_group_size: usize,
    cmos_banks: &[Vec<f64>],
    sfq_active: &[Vec<(f64, u64, f64)>],
    readout_group_size: usize,
    sfq_batches: &[Option<SfqBatch>],
) -> (f64, f64) {
    match op.kind {
        OpKind::Barrier => (dep, dep),
        k if k.is_virtual_rz() => (dep, dep),
        k if k.is_two_qubit() => (dep, dep + model.two_q_ns),
        OpKind::Measure => match model.readout {
            ReadoutModel::Parallel { duration_ns } => (dep, dep + duration_ns),
            ReadoutModel::Sfq { schedule, .. } => {
                if schedule.sharing == qisim_microarch::sfq::JpmSharing::Unshared {
                    // Per-JPM circuits: fully independent readouts.
                    return (dep, dep + schedule.qubit_latency_ns(0));
                }
                let g = op.qubit as usize / readout_group_size;
                match &sfq_batches[g] {
                    // Join the open batch: a member whose resonator starts
                    // a little late still drains through the shared
                    // circuit at its pipeline slot (or later, if its own
                    // chain is the bottleneck).
                    Some(b)
                        if b.index < qisim_microarch::sfq::readout::SHARING_DEGREE
                            && dep < b.free_ns =>
                    {
                        let start = b.start_ns.max(dep);
                        let end = (b.start_ns + schedule.qubit_latency_ns(b.index))
                            .max(dep + schedule.qubit_latency_ns(0));
                        (start, end)
                    }
                    Some(b) => {
                        let start = dep.max(b.free_ns);
                        (start, start + schedule.qubit_latency_ns(0))
                    }
                    None => (dep, dep + schedule.qubit_latency_ns(0)),
                }
            }
        },
        _ => {
            // Drive gate.
            match model.drive {
                DriveModel::PerQubit => (dep, dep + model.one_q_ns),
                DriveModel::CmosFdm { .. } => {
                    let g = op.qubit as usize / drive_group_size;
                    let bank = cmos_banks[g].iter().cloned().fold(f64::INFINITY, f64::min);
                    let start = dep.max(bank);
                    (start, start + model.one_q_ns)
                }
                DriveModel::SfqBroadcast { bs, .. } => {
                    let g = op.qubit as usize / drive_group_size;
                    let class = op.kind.broadcast_class();
                    let mut t = dep;
                    loop {
                        let active: Vec<&(f64, u64, f64)> =
                            sfq_active[g].iter().filter(|(end, _, _)| *end > t).collect();
                        // Join an in-flight broadcast of the same class.
                        if let Some((end, _, start)) =
                            active.iter().find(|(_, c, s)| *c == class && *s == t)
                        {
                            return (*start, *end);
                        }
                        let mut classes: Vec<u64> = active.iter().map(|(_, c, _)| *c).collect();
                        classes.sort_unstable();
                        classes.dedup();
                        if (classes.len() as u32) < bs {
                            return (t, t + model.one_q_ns);
                        }
                        // Wait for the earliest broadcast to finish.
                        t = active.iter().map(|(end, _, _)| *end).fold(f64::INFINITY, f64::min);
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn commit(
    op: &Op,
    start: f64,
    end: f64,
    model: &TimingModel,
    drive_group_size: usize,
    cmos_banks: &mut [Vec<f64>],
    sfq_active: &mut [Vec<(f64, u64, f64)>],
    readout_group_size: usize,
    sfq_batches: &mut [Option<SfqBatch>],
) {
    match op.kind {
        OpKind::Measure => {
            if let ReadoutModel::Sfq { schedule, .. } = model.readout {
                if schedule.sharing == qisim_microarch::sfq::JpmSharing::Unshared {
                    return;
                }
                let g = op.qubit as usize / readout_group_size;
                match &mut sfq_batches[g] {
                    Some(b)
                        if b.index < qisim_microarch::sfq::readout::SHARING_DEGREE
                            && start < b.free_ns
                            && start >= b.start_ns =>
                    {
                        b.index += 1;
                    }
                    slot => {
                        *slot = Some(SfqBatch {
                            start_ns: start,
                            index: 1,
                            free_ns: start + schedule.group_latency_ns(),
                        });
                    }
                }
            }
        }
        k if k.is_drive() => match model.drive {
            DriveModel::CmosFdm { .. } => {
                let g = op.qubit as usize / drive_group_size;
                let bank = cmos_banks[g]
                    .iter_mut()
                    .min_by(|a, b| a.partial_cmp(b).expect("finite bank times"))
                    .expect("at least one bank");
                *bank = (*bank).max(end);
            }
            DriveModel::SfqBroadcast { .. } => {
                let g = op.qubit as usize / drive_group_size;
                let class = op.kind.broadcast_class();
                // Joining an identical broadcast needs no new entry.
                if !sfq_active[g].iter().any(|(e, c, s)| *e == end && *c == class && *s == start) {
                    sfq_active[g].push((end, class, start));
                }
                sfq_active[g].retain(|(e, _, _)| *e > start);
            }
            DriveModel::PerQubit => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Op, OpKind};
    use crate::workloads;
    use qisim_microarch::sfq::ReadoutSchedule;

    #[test]
    fn serial_dependencies_stack_up() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::one_q(OpKind::X, 0));
        c.push(Op::one_q(OpKind::Y, 0));
        c.push(Op::measure(0, 0));
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.makespan_ns(), 25.0 + 25.0 + 517.0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[1].start_ns, 25.0);
    }

    #[test]
    fn virtual_rz_takes_zero_time() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::one_q(OpKind::Rz(0.3), 0));
        c.push(Op::one_q(OpKind::T, 0));
        c.push(Op::one_q(OpKind::X, 0));
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.makespan_ns(), 25.0);
    }

    #[test]
    fn fdm_banks_serialize_parallel_gates() {
        // 4 qubits in one FDM group with 2 banks: four simultaneous H
        // gates take two slots.
        let mut c = Circuit::new(4, 4);
        for q in 0..4 {
            c.push(Op::one_q(OpKind::H, q));
        }
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.makespan_ns(), 50.0);
        // With per-qubit AWGs everything is parallel.
        let model = TimingModel { drive: DriveModel::PerQubit, ..TimingModel::cmos_baseline() };
        assert_eq!(simulate(&c, &model).makespan_ns(), 25.0);
    }

    #[test]
    fn sfq_broadcast_joins_same_class_gates() {
        // 8 identical H gates broadcast in one slot even at #BS = 1.
        let mut c = Circuit::new(8, 8);
        for q in 0..8 {
            c.push(Op::one_q(OpKind::H, q));
        }
        let t = simulate(&c, &TimingModel::sfq(1, ReadoutSchedule::baseline()));
        assert_eq!(t.makespan_ns(), 25.0);
    }

    #[test]
    fn sfq_bs_limits_distinct_classes() {
        // Two distinct gate types on one group: #BS=1 serializes, #BS=2
        // runs them together.
        let mut c = Circuit::new(2, 2);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::one_q(OpKind::X, 1));
        let t1 = simulate(&c, &TimingModel::sfq(1, ReadoutSchedule::baseline()));
        assert_eq!(t1.makespan_ns(), 50.0);
        let t2 = simulate(&c, &TimingModel::sfq(2, ReadoutSchedule::baseline()));
        assert_eq!(t2.makespan_ns(), 25.0);
    }

    #[test]
    fn cz_has_no_structural_hazard() {
        let mut c = Circuit::new(4, 4);
        c.push(Op::two_q(OpKind::Cz, 0, 1));
        c.push(Op::two_q(OpKind::Cz, 2, 3));
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.makespan_ns(), 50.0);
    }

    #[test]
    fn barrier_synchronizes() {
        let mut c = Circuit::new(2, 2);
        c.push(Op::one_q(OpKind::X, 0));
        c.push(Op { kind: OpKind::Barrier, qubit: 0, other: None, cbit: None });
        c.push(Op::one_q(OpKind::X, 1));
        let t = simulate(&c, &TimingModel::cmos_baseline());
        // Qubit 1's gate waits for the barrier (after qubit 0's X).
        assert_eq!(t.events().last().unwrap().start_ns, 25.0);
    }

    #[test]
    fn sfq_shared_readout_batches_eight() {
        let mut c = Circuit::new(8, 8);
        for q in 0..8 {
            c.push(Op::measure(q, q));
        }
        let sched = ReadoutSchedule::opt3();
        let t = simulate(&c, &TimingModel::sfq(1, sched));
        // All eight join one batch; the last outcome lands at the batch's
        // last per-qubit latency.
        let expect = sched.qubit_latency_ns(7);
        let max_end = t.events().iter().map(|e| e.end_ns).fold(0.0f64, f64::max);
        assert!((max_end - expect).abs() < 1e-9, "max end {max_end} vs {expect}");
    }

    #[test]
    fn parallel_readout_is_flat() {
        let mut c = Circuit::new(8, 8);
        for q in 0..8 {
            c.push(Op::measure(q, q));
        }
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.makespan_ns(), 517.0);
    }

    #[test]
    fn esm_cycle_structure_cmos() {
        // d=5 patch on the baseline CMOS model: the cycle is two
        // serialized H layers + 4 CZ layers + readout.
        let p = workloads::Patch::new(5);
        let c = p.esm_circuit(1);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        // Lower bound: fully parallel would be 2*25 + 200 + 517 = 767.
        assert!(t.makespan_ns() >= 767.0);
        // Upper bound: H layers serialize at worst by ancillas/group/2.
        assert!(t.makespan_ns() < 1600.0, "makespan {}", t.makespan_ns());
        // Reducing FDM shortens the cycle (the Opt-7 lever).
        let t8 = simulate(&c, &TimingModel::cmos(8, 517.0));
        assert!(t8.makespan_ns() <= t.makespan_ns());
    }

    #[test]
    fn esm_cycle_structure_sfq() {
        let p = workloads::Patch::new(5);
        let c = p.esm_circuit(1);
        let base = simulate(&c, &TimingModel::sfq(8, ReadoutSchedule::baseline()));
        // H broadcasts + CZ layers + outcome latency ≈ 50 + 200 + 595
        // (the trailing 70 ns JPM reset is not outcome-blocking).
        assert!((base.makespan_ns() - 845.0).abs() < 60.0, "makespan {}", base.makespan_ns());
        let naive = simulate(
            &c,
            &TimingModel::sfq(
                8,
                ReadoutSchedule {
                    sharing: qisim_microarch::sfq::JpmSharing::SharedNaive,
                    ..ReadoutSchedule::baseline()
                },
            ),
        );
        assert!(naive.makespan_ns() > 4.0 * base.makespan_ns());
        let piped = simulate(&c, &TimingModel::sfq(8, ReadoutSchedule::opt3()));
        assert!(piped.makespan_ns() < 2.5 * base.makespan_ns());
        assert!(piped.makespan_ns() < naive.makespan_ns());
    }

    #[test]
    fn activity_factors_are_sane() {
        let p = workloads::Patch::new(5);
        let c = p.esm_circuit(2);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        let a = t.activity();
        for v in [a.drive_duty, a.per_qubit_gate_duty, a.cz_duty, a.readout_duty] {
            assert!(v > 0.0 && v <= 1.0, "activity {v}");
        }
        // Readout dominates the ESM cycle; per-qubit drive is tiny.
        assert!(a.readout_duty > a.per_qubit_gate_duty);
    }

    #[test]
    fn busy_and_idle_partition_makespan() {
        let mut c = Circuit::new(2, 2);
        c.push(Op::one_q(OpKind::H, 0));
        c.push(Op::two_q(OpKind::Cz, 0, 1));
        c.push(Op::measure(0, 0));
        let t = simulate(&c, &TimingModel::cmos_baseline());
        for q in 0..2 {
            let sum = t.qubit_busy_ns(q) + t.qubit_idle_ns(q);
            assert!((sum - t.makespan_ns()).abs() < 1e-9);
        }
        assert!(t.qubit_idle_ns(1) > t.qubit_idle_ns(0));
    }

    #[test]
    fn events_are_consistent_with_ops() {
        let c = workloads::ghz(6);
        let t = simulate(&c, &TimingModel::cmos_baseline());
        assert_eq!(t.events().len(), c.ops().len());
        for e in t.events() {
            assert!(e.end_ns >= e.start_ns);
        }
    }
}
