//! # qisim-par
//!
//! Zero-dependency parallel execution layer for the QIsim scalability
//! framework: a scoped-thread work queue with **deterministic result
//! ordering**, built on `std` only (the build environment is offline, so
//! `rayon` is unavailable by design).
//!
//! The paper's headline results are dense sweeps of `scalability::analyze`
//! over qubit counts and design points, and the surface-code Monte-Carlo
//! behind them is embarrassingly parallel. Both map onto [`par_map`] /
//! [`par_map_indices`]: tasks are pulled from a shared atomic index by a
//! small pool of scoped threads, every result lands in the slot of its
//! input, and the output `Vec` is **always in input order** regardless of
//! how many threads ran or which thread computed which item.
//!
//! # Thread-count resolution
//!
//! [`threads`] resolves, in priority order:
//!
//! 1. the runtime override installed with [`set_threads`] (used by
//!    benches and determinism tests);
//! 2. the `QISIM_THREADS` environment variable (a positive integer);
//! 3. [`std::thread::available_parallelism`].
//!
//! # Serial fallback
//!
//! The `par` cargo feature (on by default) is a compile-time kill switch:
//! built with `--no-default-features`, [`par_map`] compiles to the plain
//! serial loop, spawns no threads, and produces bit-identical results —
//! callers are expected to make their *work* thread-count independent
//! (e.g. fixed chunking with per-chunk RNG streams), at which point the
//! serial and parallel builds agree exactly.
//!
//! # Examples
//!
//! ```
//! use qisim_par::{par_map, par_map_indices, threads};
//!
//! // Results are in input order no matter how many threads ran.
//! let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // The index variant fits chunked Monte-Carlo: chunk `i` derives its
//! // own RNG stream from `i`, so the sum is thread-count independent.
//! let chunk_failures = par_map_indices(8, |i| i % 3);
//! assert_eq!(chunk_failures.iter().sum::<usize>(), 7);
//! assert!(threads() >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use qisim_obs::{counter, gauge, observe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runtime thread-count override; 0 means "no override installed".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (`Some(n)`) or removes (`None`) a runtime thread-count
/// override. The override takes precedence over `QISIM_THREADS` and the
/// machine's parallelism; benches use it to time serial-vs-parallel runs
/// inside one process, and the determinism tests use it to prove results
/// are identical at any thread count.
///
/// # Panics
///
/// Panics if `n == Some(0)`; use `Some(1)` to force the serial path.
pub fn set_threads(n: Option<usize>) {
    if let Some(0) = n {
        panic!("thread override must be positive; use Some(1) for serial");
    }
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Parses a `QISIM_THREADS` value; `None` for anything but a positive
/// integer. Only reachable from [`threads`] in the parallel build (the
/// serial build pins the count to 1), hence the allow.
#[cfg_attr(not(feature = "par"), allow(dead_code))]
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The number of worker threads [`par_map`] will use: the [`set_threads`]
/// override if installed, else `QISIM_THREADS`, else the machine's
/// available parallelism. Always at least 1; always exactly 1 when the
/// `par` feature is compiled out.
pub fn threads() -> usize {
    #[cfg(not(feature = "par"))]
    {
        1
    }
    #[cfg(feature = "par")]
    {
        match THREAD_OVERRIDE.load(Ordering::Relaxed) {
            0 => std::env::var("QISIM_THREADS")
                .ok()
                .as_deref()
                .and_then(parse_threads)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
                }),
            n => n,
        }
    }
}

/// Whether the parallel path is compiled in (`par` feature).
pub const fn is_parallel_build() -> bool {
    cfg!(feature = "par")
}

/// Applies `f` to every element of `items`, in parallel, returning the
/// results **in input order**.
///
/// Work distribution is dynamic (an atomic next-index queue), so uneven
/// task costs — e.g. one power bisection per sweep point — load-balance
/// across the pool; determinism of the *output* is unaffected because
/// every result is placed by its input index.
///
/// # Panics
///
/// Propagates the first worker panic (after all workers have stopped).
pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    par_map_indices(items.len(), |i| f(&items[i]))
}

/// [`par_map_indices`] over fixed-size chunks of the range `0..n`: task
/// `i` receives `(i, start, len)` where `start = i·chunk` and `len` is
/// `chunk` except for the final remainder chunk. The chunk grid depends
/// only on `(n, chunk)` — never on the thread count — so callers that
/// derive per-chunk state (an RNG stream, a scratch arena) from the chunk
/// index get bit-identical aggregates at any parallelism.
///
/// The bit-sliced Monte-Carlo engine drives this with `chunk` a multiple
/// of 64, so every parallel work unit is a whole number of 64-trial
/// lane words.
///
/// # Panics
///
/// Panics if `chunk == 0`.
///
/// # Examples
///
/// ```
/// use qisim_par::par_map_chunked;
///
/// let spans = par_map_chunked(10, 4, |i, start, len| (i, start, len));
/// assert_eq!(spans, vec![(0, 0, 4), (1, 4, 4), (2, 8, 2)]);
/// assert_eq!(par_map_chunked(0, 4, |i, _, _| i), Vec::<usize>::new());
/// ```
pub fn par_map_chunked<U: Send, F: Fn(usize, usize, usize) -> U + Sync>(
    n: usize,
    chunk: usize,
    f: F,
) -> Vec<U> {
    assert!(chunk > 0, "chunk size must be positive");
    par_map_indices(n.div_ceil(chunk), |i| {
        let start = i * chunk;
        f(i, start, chunk.min(n - start))
    })
}

/// [`par_map`] over the index range `0..n`: the chunked-Monte-Carlo /
/// design-grid building block (the caller derives per-task state, such as
/// an RNG stream, from the index alone).
pub fn par_map_indices<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    let workers = threads().min(n);
    counter!("par.map.calls");
    counter!("par.tasks", n as u64);
    gauge!("par.workers", workers.max(1) as f64);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    parallel_map_indices(n, workers, &f)
}

/// The scoped-thread pool behind [`par_map_indices`]. Only compiled (and
/// only reached) when the `par` feature is on and `workers > 1`.
fn parallel_map_indices<U: Send, F: Fn(usize) -> U + Sync>(
    n: usize,
    workers: usize,
    f: &F,
) -> Vec<U> {
    qisim_obs::span!("par.map");
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Flight-recorder epoch for queue-to-start latency: tasks measure how
    // long they sat in the queue relative to the pool going live.
    let pool_t0 = qisim_obs::trace::now_ns();
    let queue_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                scope.spawn(move || {
                    if qisim_obs::trace::armed() {
                        qisim_obs::trace::set_thread_label(&format!("qisim-par worker-{w}"));
                    }
                    let started = std::time::Instant::now();
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // Queue health for the telemetry exporter: how
                        // deep the backlog was when this task started,
                        // and how long it waited behind earlier tasks.
                        gauge!("par.queue_depth", (n - i - 1) as f64);
                        observe!("par.chunk.wait_ns", queue_start.elapsed().as_nanos() as f64);
                        if qisim_obs::trace::armed() {
                            let queue_ns = qisim_obs::trace::now_ns().saturating_sub(pool_t0);
                            qisim_obs::trace::instant(
                                "par.chunk.dispatch",
                                &[
                                    ("worker", w as f64),
                                    ("chunk", i as f64),
                                    ("queue_ns", queue_ns as f64),
                                ],
                            );
                        }
                        local.push((i, f(i)));
                    }
                    (local, started.elapsed())
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok((local, busy)) => {
                    qisim_obs::observe_f64("par.worker_busy_ns", busy.as_nanos() as f64);
                    for (i, value) in local {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots.into_iter().map(|s| s.expect("every index visited exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads` and `QISIM_THREADS` are process-global; tests that
    /// touch them must not interleave.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn results_are_in_input_order_at_every_thread_count() {
        let _l = lock();
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for n in [1usize, 2, 3, 8] {
            set_threads(Some(n));
            assert_eq!(par_map(&items, |&x| x * x + 1), expect, "threads = {n}");
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let _l = lock();
        set_threads(Some(4));
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[9u8], |&x| x + 1), vec![10]);
        assert_eq!(par_map_indices(0, |i| i), Vec::<usize>::new());
        set_threads(None);
    }

    #[test]
    fn uneven_tasks_still_land_in_order() {
        let _l = lock();
        set_threads(Some(4));
        // Task cost grows with index, so late tasks finish last on some
        // thread; ordering must be unaffected.
        let out = par_map_indices(64, |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 * 1000) {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row.0, i);
        }
        set_threads(None);
    }

    #[test]
    fn chunked_grid_covers_the_range_exactly_once() {
        let _l = lock();
        for (n, chunk) in [(0usize, 64usize), (63, 64), (64, 64), (65, 64), (257, 64), (256, 256)] {
            for threads in [1usize, 3] {
                set_threads(Some(threads));
                let spans = par_map_chunked(n, chunk, |i, start, len| (i, start, len));
                let mut covered = 0usize;
                for (i, &(idx, start, len)) in spans.iter().enumerate() {
                    assert_eq!(idx, i);
                    assert_eq!(start, i * chunk);
                    assert!(len >= 1 && len <= chunk);
                    covered += len;
                }
                assert_eq!(covered, n, "n={n} chunk={chunk} threads={threads}");
            }
        }
        set_threads(None);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_is_rejected() {
        let _ = par_map_chunked(8, 0, |i, _, _| i);
    }

    #[test]
    fn thread_resolution_prefers_override_then_env() {
        let _l = lock();
        set_threads(Some(3));
        assert_eq!(threads(), if is_parallel_build() { 3 } else { 1 });
        set_threads(None);
        std::env::set_var("QISIM_THREADS", "5");
        assert_eq!(threads(), if is_parallel_build() { 5 } else { 1 });
        std::env::set_var("QISIM_THREADS", "zero");
        assert!(threads() >= 1, "garbage env falls back to the machine");
        std::env::remove_var("QISIM_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn env_parser_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_override_is_rejected() {
        set_threads(Some(0));
    }

    #[cfg(feature = "par")]
    #[test]
    fn worker_panics_propagate() {
        let _l = lock();
        set_threads(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map_indices(16, |i| {
                if i == 7 {
                    panic!("boom at 7");
                }
                i
            })
        });
        set_threads(None);
        assert!(result.is_err(), "panic must cross the pool");
    }
}
