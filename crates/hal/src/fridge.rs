//! Dilution-refrigerator model: temperature stages and cooling budgets.
//!
//! The QCI's scalability constraint #1 (Section 2.4.1): every watt
//! dissipated at a stage — by devices, by cable heat leaks, by signal
//! dissipation in attenuators — must fit the stage's cooling capacity.
//! Capacities follow Krinner et al. (Table 2 of the paper): 1.5 W at 4 K,
//! 200 µW at 100 mK, 20 µW at 20 mK (and 30 W at the 50 K shield, from the
//! paper's discussion section).

use crate::units::*;

/// A temperature stage of the dilution refrigerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// 50 K radiation shield.
    K50,
    /// 4 K stage (pulse-tube cooled).
    K4,
    /// 1 K ("still") stage.
    K1,
    /// 100 mK (cold-plate) stage.
    Mk100,
    /// 20 mK (mixing-chamber) stage, where the qubits live.
    Mk20,
}

impl Stage {
    /// All stages from warm to cold.
    pub const ALL: [Stage; 5] = [Stage::K50, Stage::K4, Stage::K1, Stage::Mk100, Stage::Mk20];

    /// Cooling capacity of this stage in watts.
    pub fn cooling_capacity_w(self) -> f64 {
        match self {
            Stage::K50 => 30.0,
            Stage::K4 => 1.5,
            Stage::K1 => 30.0 * MILLI_W,
            Stage::Mk100 => 200.0 * MICRO_W,
            Stage::Mk20 => 20.0 * MICRO_W,
        }
    }

    /// Physical temperature in kelvin.
    pub fn temperature_k(self) -> f64 {
        match self {
            Stage::K50 => 50.0,
            Stage::K4 => 4.0,
            Stage::K1 => 1.0,
            Stage::Mk100 => 0.1,
            Stage::Mk20 => 0.02,
        }
    }

    /// Attenuation (dB) inserted at this stage by the paper's fixed
    /// microwave attenuator chain (0-20-10-10-20 dB for 50K-4K-1K-100mK-20mK).
    pub fn attenuation_db(self) -> f64 {
        match self {
            Stage::K50 => 0.0,
            Stage::K4 => 20.0,
            Stage::K1 => 10.0,
            Stage::Mk100 => 10.0,
            Stage::Mk20 => 20.0,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::K50 => "50K",
            Stage::K4 => "4K",
            Stage::K1 => "1K",
            Stage::Mk100 => "100mK",
            Stage::Mk20 => "20mK",
        }
    }

    /// Inverse of [`Stage::label`], for text codecs: `"4K"` →
    /// [`Stage::K4`]. Returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.label() == label)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A dilution refrigerator with (possibly customized) per-stage budgets.
///
/// # Examples
///
/// ```
/// use qisim_hal::fridge::{Fridge, Stage};
///
/// let fridge = Fridge::standard();
/// assert_eq!(fridge.budget_w(Stage::K4), 1.5);
/// assert!(fridge.fits(Stage::Mk20, 19e-6));
/// assert!(!fridge.fits(Stage::Mk20, 21e-6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fridge {
    budgets_w: [f64; 5],
}

impl Fridge {
    /// The Table 2 refrigerator.
    pub fn standard() -> Self {
        let mut budgets_w = [0.0; 5];
        for (i, s) in Stage::ALL.iter().enumerate() {
            budgets_w[i] = s.cooling_capacity_w();
        }
        Fridge { budgets_w }
    }

    /// Overrides one stage's budget (for future-technology what-ifs,
    /// Section 7.1).
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive.
    pub fn with_budget(mut self, stage: Stage, watts: f64) -> Self {
        assert!(watts > 0.0, "budget must be positive");
        self.budgets_w[Self::index(stage)] = watts;
        self
    }

    fn index(stage: Stage) -> usize {
        Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")
    }

    /// Cooling budget of a stage in watts.
    pub fn budget_w(&self, stage: Stage) -> f64 {
        self.budgets_w[Self::index(stage)]
    }

    /// Whether a dissipation fits within a stage's budget.
    pub fn fits(&self, stage: Stage, power_w: f64) -> bool {
        power_w <= self.budget_w(stage)
    }

    /// Utilization fraction (power / budget) of a stage. A zero (or
    /// negative) budget is infinitely over-subscribed by any load, so
    /// this returns [`f64::INFINITY`] rather than NaN — binding-stage
    /// selections sort it with `total_cmp` instead of tripping on it.
    pub fn utilization(&self, stage: Stage, power_w: f64) -> f64 {
        let budget = self.budget_w(stage);
        if budget <= 0.0 {
            return f64::INFINITY;
        }
        power_w / budget
    }

    /// Builds a fridge from explicit per-stage budgets (ordered warm to
    /// cold, matching [`Stage::ALL`]). The non-panicking counterpart of
    /// [`Fridge::with_budget`] for derived budgets — e.g. a topology's
    /// interconnect-derated fridge: `None` when any budget is
    /// non-positive or non-finite.
    pub fn from_budgets(budgets_w: [f64; 5]) -> Option<Fridge> {
        if budgets_w.iter().all(|w| w.is_finite() && *w > 0.0) {
            Some(Fridge { budgets_w })
        } else {
            None
        }
    }

    /// Per-stage budgets in watts, ordered warm to cold ([`Stage::ALL`]).
    pub fn budgets_w(&self) -> [f64; 5] {
        self.budgets_w
    }
}

impl Default for Fridge {
    fn default() -> Self {
        Fridge::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_table2() {
        let f = Fridge::standard();
        assert_eq!(f.budget_w(Stage::K4), 1.5);
        assert!((f.budget_w(Stage::Mk100) - 200e-6).abs() < 1e-12);
        assert!((f.budget_w(Stage::Mk20) - 20e-6).abs() < 1e-12);
    }

    #[test]
    fn stages_get_colder_and_tighter() {
        for w in Stage::ALL.windows(2) {
            assert!(w[0].temperature_k() > w[1].temperature_k());
        }
        // 4K budget dwarfs the mK budgets.
        assert!(Stage::K4.cooling_capacity_w() / Stage::Mk20.cooling_capacity_w() > 1e4);
    }

    #[test]
    fn attenuator_chain_totals_60db() {
        let total: f64 = Stage::ALL.iter().map(|s| s.attenuation_db()).sum();
        assert_eq!(total, 60.0);
    }

    #[test]
    fn budget_override() {
        let f = Fridge::standard().with_budget(Stage::Mk20, 40e-6);
        assert!(f.fits(Stage::Mk20, 30e-6));
        assert!((f.utilization(Stage::Mk20, 20e-6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_utilization_is_infinite_not_nan() {
        let f = Fridge { budgets_w: [0.0; 5] };
        for s in Stage::ALL {
            assert_eq!(f.utilization(s, 1e-6), f64::INFINITY);
            assert!(!f.utilization(s, 0.0).is_nan());
        }
        // An infinite utilization sorts above every finite one under
        // total_cmp, so binding-stage selection stays deterministic.
        let util = f.utilization(Stage::Mk20, 0.0);
        assert_eq!(util.total_cmp(&1e9), std::cmp::Ordering::Greater);
    }

    #[test]
    fn from_budgets_rejects_non_positive_and_non_finite() {
        assert_eq!(Fridge::from_budgets(Fridge::standard().budgets_w()), Some(Fridge::standard()));
        assert_eq!(Fridge::from_budgets([1.0, 1.0, 0.0, 1.0, 1.0]), None);
        assert_eq!(Fridge::from_budgets([1.0, -2.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(Fridge::from_budgets([1.0, f64::NAN, 1.0, 1.0, 1.0]), None);
        assert_eq!(Fridge::from_budgets([1.0, f64::INFINITY, 1.0, 1.0, 1.0]), None);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Stage::Mk20.to_string(), "20mK");
        assert_eq!(Stage::K4.to_string(), "4K");
    }
}
