//! Multi-fridge scale-out topology: composable refrigerator clusters
//! with typed inter-fridge links.
//!
//! The paper's endgame — 10K+ qubits toward quantum supremacy — does not
//! fit one dilution refrigerator: §2.4.1's cooling budgets cap a single
//! fridge regardless of QCI technology, so datacenter-scale machines tile
//! N fridges and pay for the privilege in interconnect heat (every
//! inter-fridge cable terminates inside two fridges and leaks into the
//! stages it crosses, exactly like the Table 2 intra-fridge wires). A
//! [`FridgeTopology`] captures that trade: N identical fridges, a typed
//! [`LinkKind`] with per-stage heat loads plus latency and bandwidth,
//! the link count per fridge, and whether room-temperature controllers
//! are shared across the cluster.
//!
//! This module holds a **zero panic budget** (tools/panic_allowlist.txt):
//! every builder is total and validation stays with `qisim::spec`.
//!
//! # Examples
//!
//! ```
//! use qisim_hal::fridge::Stage;
//! use qisim_hal::topology::{FridgeTopology, LinkKind};
//!
//! // One fridge has no peers: no interconnect heat anywhere.
//! let single = FridgeTopology::standard();
//! assert_eq!(single.interconnect_w(Stage::K4), 0.0);
//!
//! // Four fridges over photonic links pay at the mixing chamber.
//! let four = FridgeTopology::standard().with_fridges(4).with_link(LinkKind::Photonic);
//! assert!(four.interconnect_w(Stage::Mk20) > 0.0);
//! assert!(four.effective_budget_w(Stage::Mk20) < four.fridge().budget_w(Stage::Mk20));
//! ```

use crate::fridge::{Fridge, Stage};
use crate::wire::WireKind;

/// Coordination duty cycle of the inter-fridge links when a shared
/// room-temperature controller arbitrates half the traffic centrally
/// (dedicated per-fridge controllers push everything over the cryo
/// links at full duty).
const SHARED_CONTROLLER_LINK_DUTY: f64 = 0.5;
/// Extra round trip through the shared room-temperature controller, in
/// ns (fiber up, arbitration, fiber down).
const SHARED_CONTROLLER_TRIP_NS: f64 = 500.0;

/// Inter-fridge interconnect technology.
///
/// Each kind reuses the Table 2 per-cable heat model of the matching
/// [`WireKind`] — an inter-fridge cable terminates inside the fridge the
/// same way an intra-fridge one does — and adds the link-level latency
/// and bandwidth the scale-out verdict reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Fridge-to-fridge via room temperature over stainless coax: no new
    /// cryogenics, but the full 300 K cable heat at every stage crossed.
    RoomCoax,
    /// Direct cryogenic NbTi coax between 4 K plates (the paper's
    /// superconducting-coax class): 7.4× lighter passive load.
    CryoCoax,
    /// Optical fiber with a millikelvin photodetector (the Table 2
    /// photonic class): near-zero passive load, the detector pays at
    /// 20 mK.
    Photonic,
}

impl LinkKind {
    /// All link kinds, default first.
    pub const ALL: [LinkKind; 3] = [LinkKind::RoomCoax, LinkKind::CryoCoax, LinkKind::Photonic];

    /// The Table 2 wire class whose per-cable heat model this link
    /// reuses.
    pub fn wire(self) -> WireKind {
        match self {
            LinkKind::RoomCoax => WireKind::Coax,
            LinkKind::CryoCoax => WireKind::SuperconductingCoax,
            LinkKind::Photonic => WireKind::PhotonicLink,
        }
    }

    /// Passive heat load of one link at a stage, in watts.
    pub fn passive_load_w(self, stage: Stage) -> f64 {
        self.wire().passive_load_w(stage)
    }

    /// Active (signal-dissipation) load of one link at a stage under
    /// 100 % coordination duty, in watts.
    pub fn active_load_w(self, stage: Stage) -> f64 {
        self.wire().active_load_w(stage)
    }

    /// One-way fridge-to-fridge latency in ns (cable flight time plus
    /// transduction; the photonic link pays for electro-optic
    /// conversion at each end).
    pub fn latency_ns(self) -> f64 {
        match self {
            LinkKind::RoomCoax => 200.0,
            LinkKind::CryoCoax => 25.0,
            LinkKind::Photonic => 50.0,
        }
    }

    /// Classical coordination bandwidth of one link in bits/s.
    pub fn bandwidth_bps(self) -> f64 {
        match self {
            LinkKind::RoomCoax => 6.0e9,
            LinkKind::CryoCoax => 20.0e9,
            LinkKind::Photonic => 100.0e9,
        }
    }

    /// Stable text-codec identifier.
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::RoomCoax => "room_coax",
            LinkKind::CryoCoax => "cryo_coax",
            LinkKind::Photonic => "photonic",
        }
    }

    /// Inverse of [`LinkKind::label`]; `None` for unknown identifiers.
    pub fn from_label(label: &str) -> Option<LinkKind> {
        LinkKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A cluster of N identical dilution refrigerators joined by typed
/// inter-fridge links, with optionally shared room-temperature
/// controllers.
///
/// The single-fridge topology ([`FridgeTopology::standard`]) is the
/// degenerate case: no peers, no interconnect heat, bit-identical to
/// analyzing the bare [`Fridge`]. Builders are total — out-of-range
/// values are clamped to the nearest meaningful one here and rejected
/// with typed diagnostics by `qisim::spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct FridgeTopology {
    fridges: u32,
    fridge: Fridge,
    link: LinkKind,
    links_per_fridge: u32,
    shared_controllers: bool,
}

impl FridgeTopology {
    /// The degenerate single-fridge topology on the Table 2
    /// refrigerator: cryo-coax links are configured but carry no heat
    /// (one fridge has no peers).
    pub fn standard() -> Self {
        FridgeTopology {
            fridges: 1,
            fridge: Fridge::standard(),
            link: LinkKind::CryoCoax,
            links_per_fridge: 2,
            shared_controllers: true,
        }
    }

    /// Sets the fridge count (clamped to at least 1).
    pub fn with_fridges(mut self, fridges: u32) -> Self {
        self.fridges = fridges.max(1);
        self
    }

    /// Sets the per-fridge refrigerator (every fridge in the cluster is
    /// identical).
    pub fn with_fridge(mut self, fridge: Fridge) -> Self {
        self.fridge = fridge;
        self
    }

    /// Sets the inter-fridge link technology.
    pub fn with_link(mut self, link: LinkKind) -> Self {
        self.link = link;
        self
    }

    /// Sets how many inter-fridge links terminate in each fridge.
    pub fn with_links_per_fridge(mut self, links: u32) -> Self {
        self.links_per_fridge = links;
        self
    }

    /// Sets whether one room-temperature controller rack is shared
    /// across the cluster (halving the cryo-link coordination duty) or
    /// every fridge brings its own.
    pub fn with_shared_controllers(mut self, shared: bool) -> Self {
        self.shared_controllers = shared;
        self
    }

    /// Fridge count.
    pub fn fridges(&self) -> u32 {
        self.fridges
    }

    /// The per-fridge refrigerator.
    pub fn fridge(&self) -> &Fridge {
        &self.fridge
    }

    /// Inter-fridge link technology.
    pub fn link(&self) -> LinkKind {
        self.link
    }

    /// Inter-fridge links terminating in each fridge.
    pub fn links_per_fridge(&self) -> u32 {
        self.links_per_fridge
    }

    /// Whether room-temperature controllers are shared across the
    /// cluster.
    pub fn shared_controllers(&self) -> bool {
        self.shared_controllers
    }

    /// Whether this is the degenerate single-fridge case (no peers, no
    /// interconnect heat).
    pub fn is_single(&self) -> bool {
        self.fridges <= 1
    }

    /// Coordination duty cycle of the inter-fridge links: shared
    /// room-temperature controllers arbitrate half the traffic
    /// centrally; dedicated controllers push it all over the cryo links.
    pub fn link_duty(&self) -> f64 {
        if self.shared_controllers {
            SHARED_CONTROLLER_LINK_DUTY
        } else {
            1.0
        }
    }

    /// Interconnect heat folded into one fridge's stage, in watts: every
    /// terminating link leaks its passive load plus its duty-weighted
    /// active load. Exactly zero for a single fridge — the degenerate
    /// topology stays bit-identical to the bare [`Fridge`].
    pub fn interconnect_w(&self, stage: Stage) -> f64 {
        if self.is_single() {
            return 0.0;
        }
        let per_link =
            self.link.passive_load_w(stage) + self.link.active_load_w(stage) * self.link_duty();
        self.links_per_fridge as f64 * per_link
    }

    /// One fridge's cooling budget left for the QCI after interconnect
    /// heat, in watts (floored at zero: a link bundle can eat a stage
    /// whole).
    pub fn effective_budget_w(&self, stage: Stage) -> f64 {
        (self.fridge.budget_w(stage) - self.interconnect_w(stage)).max(0.0)
    }

    /// The per-fridge refrigerator with interconnect heat already
    /// subtracted from every stage budget — what each fridge's power
    /// bisection runs against. `None` when the interconnect consumes
    /// some stage's entire budget (the cluster supports zero qubits and
    /// the link is the binding constraint).
    pub fn effective_fridge(&self) -> Option<Fridge> {
        if self.is_single() {
            return Some(self.fridge.clone());
        }
        let mut budgets = [0.0; 5];
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            budgets[i] = self.effective_budget_w(stage);
        }
        Fridge::from_budgets(budgets)
    }

    /// The stage whose interconnect load consumes the largest fraction
    /// of its budget — the link-binding candidate ([`f64::total_cmp`]
    /// ordering, so NaN-free and deterministic). `None` for a single
    /// fridge.
    pub fn worst_link_stage(&self) -> Option<Stage> {
        if self.is_single() {
            return None;
        }
        Stage::ALL
            .into_iter()
            .max_by(|&a, &b| self.link_utilization(a).total_cmp(&self.link_utilization(b)))
    }

    /// Fraction of one stage's budget the interconnect consumes
    /// (infinite for a zero-budget stage, mirroring
    /// [`Fridge::utilization`]).
    pub fn link_utilization(&self, stage: Stage) -> f64 {
        self.fridge.utilization(stage, self.interconnect_w(stage))
    }

    /// One-way coordination latency between two fridges in ns: the link
    /// flight plus the shared controller's arbitration round trip when
    /// one rack serves the whole cluster.
    pub fn coordination_latency_ns(&self) -> f64 {
        let controller = if self.shared_controllers { SHARED_CONTROLLER_TRIP_NS } else { 0.0 };
        self.link.latency_ns() + controller
    }

    /// Aggregate inter-fridge bandwidth terminating in one fridge, in
    /// bits/s.
    pub fn bandwidth_bps(&self) -> f64 {
        self.links_per_fridge as f64 * self.link.bandwidth_bps()
    }
}

impl Default for FridgeTopology {
    fn default() -> Self {
        FridgeTopology::standard()
    }
}

impl std::fmt::Display for FridgeTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fridge(s) x {} {} link(s), controllers {}",
            self.fridges,
            self.links_per_fridge,
            self.link,
            if self.shared_controllers { "shared" } else { "dedicated" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_labels_round_trip() {
        for k in LinkKind::ALL {
            assert_eq!(LinkKind::from_label(k.label()), Some(k));
        }
        assert_eq!(LinkKind::from_label("carrier_pigeon"), None);
    }

    #[test]
    fn link_heat_reuses_the_table2_wire_classes() {
        for k in LinkKind::ALL {
            for s in Stage::ALL {
                assert_eq!(k.passive_load_w(s), k.wire().passive_load_w(s));
                assert_eq!(k.active_load_w(s), k.wire().active_load_w(s));
            }
        }
        // Cryo coax is the 7.4x-lighter superconducting class.
        let ratio = LinkKind::RoomCoax.passive_load_w(Stage::K4)
            / LinkKind::CryoCoax.passive_load_w(Stage::K4);
        assert!((ratio - 7.4).abs() < 1e-9);
    }

    #[test]
    fn single_fridge_has_no_interconnect_anywhere() {
        for link in LinkKind::ALL {
            let t = FridgeTopology::standard().with_link(link).with_links_per_fridge(64);
            for s in Stage::ALL {
                assert_eq!(t.interconnect_w(s), 0.0);
                assert_eq!(t.effective_budget_w(s), t.fridge().budget_w(s));
            }
            assert_eq!(t.effective_fridge(), Some(Fridge::standard()));
            assert_eq!(t.worst_link_stage(), None);
        }
    }

    #[test]
    fn interconnect_scales_with_links_and_duty() {
        let base = FridgeTopology::standard().with_fridges(2).with_link(LinkKind::CryoCoax);
        let one = base.clone().with_links_per_fridge(1);
        let four = base.clone().with_links_per_fridge(4);
        assert!(
            (four.interconnect_w(Stage::K4) - 4.0 * one.interconnect_w(Stage::K4)).abs() < 1e-15
        );
        // Dedicated controllers run the links at full duty: never less
        // heat than the shared-controller arbitration.
        let dedicated = base.clone().with_shared_controllers(false);
        assert!(dedicated.interconnect_w(Stage::K4) > base.interconnect_w(Stage::K4));
        assert_eq!(base.link_duty(), 0.5);
        assert_eq!(dedicated.link_duty(), 1.0);
    }

    #[test]
    fn effective_fridge_derates_and_can_vanish() {
        let t = FridgeTopology::standard().with_fridges(4).with_link(LinkKind::Photonic);
        let eff = t.effective_fridge().expect("photonic links leave budget");
        assert!(eff.budget_w(Stage::Mk20) < Fridge::standard().budget_w(Stage::Mk20));
        // A starved stage kills the whole effective fridge.
        let starved = FridgeTopology::standard()
            .with_fridges(2)
            .with_link(LinkKind::Photonic)
            .with_links_per_fridge(64)
            .with_fridge(Fridge::standard().with_budget(Stage::Mk20, 1e-9));
        assert_eq!(starved.effective_fridge(), None);
        assert_eq!(starved.worst_link_stage(), Some(Stage::Mk20));
        assert!(starved.link_utilization(Stage::Mk20) > 1.0);
    }

    #[test]
    fn builders_are_total_and_clamp() {
        let t = FridgeTopology::standard().with_fridges(0);
        assert_eq!(t.fridges(), 1);
        assert!(t.is_single());
        let t = FridgeTopology::standard().with_fridges(3).with_links_per_fridge(0);
        for s in Stage::ALL {
            assert_eq!(t.interconnect_w(s), 0.0, "zero links carry zero heat");
        }
    }

    #[test]
    fn latency_and_bandwidth_aggregate() {
        let t = FridgeTopology::standard()
            .with_fridges(4)
            .with_link(LinkKind::Photonic)
            .with_links_per_fridge(3);
        assert_eq!(t.bandwidth_bps(), 3.0 * LinkKind::Photonic.bandwidth_bps());
        assert_eq!(
            t.coordination_latency_ns(),
            LinkKind::Photonic.latency_ns() + SHARED_CONTROLLER_TRIP_NS
        );
        let dedicated = t.with_shared_controllers(false);
        assert_eq!(dedicated.coordination_latency_ns(), LinkKind::Photonic.latency_ns());
    }

    #[test]
    fn display_names_the_shape() {
        let t = FridgeTopology::standard().with_fridges(4).with_shared_controllers(false);
        let text = t.to_string();
        assert!(text.contains("4 fridge(s)"), "{text}");
        assert!(text.contains("cryo_coax"), "{text}");
        assert!(text.contains("dedicated"), "{text}");
    }
}
