//! Interconnect heat-load models (Table 2 of the paper).
//!
//! Every cable entering the refrigerator leaks heat into each stage it
//! passes (*passive load*: thermal conduction, attenuator anchoring) and
//! dissipates part of the signal it carries (*active load*: attenuated
//! microwave power, or the photodetector's electrical dissipation for
//! photonic links). Both are per-cable numbers at 100 % activation; the
//! runtime-power model multiplies active loads by the duty cycle the
//! cycle-accurate simulator reports.

use crate::fridge::Stage;
use crate::units::*;

/// Interconnect technology between temperature stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Stainless 300 K coaxial cable (SC-086/50-SS-SS class).
    Coax,
    /// Flexible multi-channel microstrip (CrioFlex3 class).
    Microstrip,
    /// Optical fiber with a 20 mK photodetector restoring the microwave.
    PhotonicLink,
    /// Superconducting NbTi coaxial cable (SC-033/50-NbTi-CN class);
    /// 7.4× lower passive load than 300 K coax at similar attenuation.
    SuperconductingCoax,
    /// Prototype superconducting Nb thin-film microstrip (Tuckerman et al.),
    /// the paper's long-term 4K–mK interconnect assumption.
    SuperconductingMicrostrip,
}

/// Passive-load reduction of the superconducting coax vs. 300 K coax.
const SC_COAX_PASSIVE_RATIO: f64 = 1.0 / 7.4;

impl WireKind {
    /// Passive heat load of one cable at a stage, in watts (Table 2).
    pub fn passive_load_w(self, stage: Stage) -> f64 {
        match (self, stage) {
            (WireKind::Coax, Stage::K4) => 1.0 * MILLI_W,
            (WireKind::Coax, Stage::Mk100) => 400.0 * NANO_W,
            (WireKind::Coax, Stage::Mk20) => 13.0 * NANO_W,

            (WireKind::Microstrip, Stage::K4) => 315.0 * MICRO_W,
            (WireKind::Microstrip, Stage::Mk100) => 210.0 * NANO_W,
            (WireKind::Microstrip, Stage::Mk20) => 4.3 * NANO_W,

            (WireKind::PhotonicLink, Stage::K4) => 250.0 * NANO_W,
            (WireKind::PhotonicLink, Stage::Mk100) => 0.1 * NANO_W,
            (WireKind::PhotonicLink, Stage::Mk20) => 0.003 * NANO_W,

            (WireKind::SuperconductingCoax, s) => {
                WireKind::Coax.passive_load_w(s) * SC_COAX_PASSIVE_RATIO
            }

            (WireKind::SuperconductingMicrostrip, Stage::K4) => 315.0 * MICRO_W,
            (WireKind::SuperconductingMicrostrip, Stage::Mk100) => 0.1 * NANO_W,
            (WireKind::SuperconductingMicrostrip, Stage::Mk20) => 0.003 * NANO_W,

            // The paper's Table 2 tracks the 4K/100mK/20mK domains only;
            // the 50K shield and 1K still absorb heat too, but their
            // budgets are sized for it and the paper does not model them.
            (_, Stage::K50) | (_, Stage::K1) => 0.0,
        }
    }

    /// Active (signal-dissipation) load of one cable at a stage under 100 %
    /// activation, in watts (Table 2).
    pub fn active_load_w(self, stage: Stage) -> f64 {
        match (self, stage) {
            (WireKind::Coax | WireKind::Microstrip | WireKind::SuperconductingCoax, Stage::K4) => {
                7.9 * MICRO_W
            }
            (
                WireKind::Coax | WireKind::Microstrip | WireKind::SuperconductingCoax,
                Stage::Mk100,
            ) => 7.9 * NANO_W,
            (
                WireKind::Coax | WireKind::Microstrip | WireKind::SuperconductingCoax,
                Stage::Mk20,
            ) => 0.79 * NANO_W,

            // The optical signal dissipates nothing along the fiber; the
            // photodetector restoring the microwave at 20 mK is the cost.
            (WireKind::PhotonicLink, Stage::Mk20) => 790.0 * NANO_W,
            (WireKind::PhotonicLink, _) => 0.0,

            (WireKind::SuperconductingMicrostrip, Stage::K4) => 7.9 * MICRO_W,
            (WireKind::SuperconductingMicrostrip, Stage::Mk100) => 7.9 * NANO_W,
            (WireKind::SuperconductingMicrostrip, Stage::Mk20) => 0.79 * NANO_W,

            (_, Stage::K50) | (_, Stage::K1) => 0.0,
        }
    }

    /// Total per-cable load at a stage for a given duty cycle of activation.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn load_w(self, stage: Stage, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty cycle must be in [0,1]");
        self.passive_load_w(stage) + self.active_load_w(stage) * duty
    }

    /// Whether this wire can span 300 K to millikelvin (the superconducting
    /// variants only work below their critical temperature and are used for
    /// the 4K–mK segment).
    pub fn spans_room_to_mk(self) -> bool {
        matches!(self, WireKind::Coax | WireKind::Microstrip | WireKind::PhotonicLink)
    }
}

/// The digital 300K→4K instruction link used by 4 K QCIs.
///
/// 4 K QCIs receive instructions, not microwaves, from room temperature;
/// the link's heat at 4 K scales with the instruction bandwidth (this is
/// what Opt-6's instruction masking attacks, Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionLink {
    /// Payload capacity of one digital cable in bits/s.
    pub cable_capacity_bps: f64,
    /// Heat load of one digital cable at 4 K in watts.
    pub cable_load_4k_w: f64,
}

impl InstructionLink {
    /// Standard link: 6 Gb/s per lane over 300 K coax (1 mW at 4 K each).
    pub fn standard() -> Self {
        InstructionLink { cable_capacity_bps: 6.0e9, cable_load_4k_w: 1.0 * MILLI_W }
    }

    /// Number of cables needed for `bandwidth_bps` (fractional — large
    /// systems bundle thousands of lanes, so quantization is negligible).
    pub fn cables_for(&self, bandwidth_bps: f64) -> f64 {
        assert!(bandwidth_bps >= 0.0, "bandwidth must be non-negative");
        bandwidth_bps / self.cable_capacity_bps
    }

    /// Heat dissipated at 4 K to deliver `bandwidth_bps`, in watts.
    pub fn power_4k_w(&self, bandwidth_bps: f64) -> f64 {
        self.cables_for(bandwidth_bps) * self.cable_load_4k_w
    }
}

impl Default for InstructionLink {
    fn default() -> Self {
        InstructionLink::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_coax_values() {
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9 * b.abs().max(1.0);
        assert!(close(WireKind::Coax.passive_load_w(Stage::K4), 1e-3));
        assert!(close(WireKind::Coax.passive_load_w(Stage::Mk100), 400e-9));
        assert!(close(WireKind::Coax.passive_load_w(Stage::Mk20), 13e-9));
        assert!(close(WireKind::Coax.active_load_w(Stage::Mk100), 7.9e-9));
    }

    #[test]
    fn superconducting_coax_is_7p4x_lighter() {
        for s in [Stage::K4, Stage::Mk100, Stage::Mk20] {
            let ratio =
                WireKind::Coax.passive_load_w(s) / WireKind::SuperconductingCoax.passive_load_w(s);
            assert!((ratio - 7.4).abs() < 1e-9);
        }
    }

    #[test]
    fn photonic_pd_dominates_at_20mk() {
        let passive = WireKind::PhotonicLink.passive_load_w(Stage::Mk20);
        let active = WireKind::PhotonicLink.active_load_w(Stage::Mk20);
        assert!(active / passive > 1e5);
        assert!((active - 790e-9).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_scales_active_only() {
        let full = WireKind::Microstrip.load_w(Stage::Mk100, 1.0);
        let idle = WireKind::Microstrip.load_w(Stage::Mk100, 0.0);
        assert!((idle - 210e-9).abs() < 1e-12);
        assert!((full - idle - 7.9e-9).abs() < 1e-15);
    }

    #[test]
    fn microstrip_lighter_than_coax_everywhere() {
        for s in [Stage::K4, Stage::Mk100, Stage::Mk20] {
            assert!(WireKind::Microstrip.passive_load_w(s) < WireKind::Coax.passive_load_w(s));
        }
    }

    #[test]
    fn span_classification() {
        assert!(WireKind::Coax.spans_room_to_mk());
        assert!(WireKind::PhotonicLink.spans_room_to_mk());
        assert!(!WireKind::SuperconductingCoax.spans_room_to_mk());
    }

    #[test]
    fn instruction_link_power_scales_linearly() {
        let link = InstructionLink::standard();
        let p1 = link.power_4k_w(6.0e9);
        assert!((p1 - 1e-3).abs() < 1e-12);
        assert!((link.power_4k_w(60.0e9) - 10.0 * p1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty cycle must be in")]
    fn bad_duty_panics() {
        let _ = WireKind::Coax.load_w(Stage::K4, 1.5);
    }
}
