//! # qisim-hal
//!
//! Technology and device models for the QIsim QCI scalability framework
//! (reproduction of Min et al., ISCA 2023). This crate is the Rust stand-in
//! for the paper's "circuit model" (Fig. 6): where the original artifact
//! synthesizes parameterized Verilog through CryoModel/Design Compiler
//! (CMOS) and Yosys + SFQ netlist optimization (SFQ), QIsim-rs describes
//! circuits as gate-equivalent / cell-count inventories and derives their
//! frequency and static/dynamic power from the analytical models here:
//!
//! * [`cmos`] — cryogenic CMOS logic and SRAM across nodes (45/22/14/7 nm),
//!   temperatures (300 K / 4 K) and voltage-scaling points;
//! * [`sfq`] — RSFQ/ERSFQ Josephson-junction logic including the mK
//!   `0.01·I_c` scaling and zero-static-power LJJ lines;
//! * [`wire`] — per-cable passive/active heat loads for every interconnect
//!   of Table 2, plus the digital 300K→4K instruction link;
//! * [`fridge`] — dilution-refrigerator stages and cooling budgets;
//! * [`topology`] — multi-fridge scale-out: N-fridge clusters with typed
//!   inter-fridge links and shared room-temperature controllers;
//! * [`analog`] — published analog front-end block powers;
//! * [`units`] — SI constants and formatting.
//!
//! # Examples
//!
//! How many coax cables fit the 100 mK budget?
//!
//! ```
//! use qisim_hal::{fridge::{Fridge, Stage}, wire::WireKind};
//!
//! let per_cable = WireKind::Coax.load_w(Stage::Mk100, 1.0);
//! let fridge = Fridge::standard();
//! let max_cables = fridge.budget_w(Stage::Mk100) / per_cable;
//! assert!(max_cables < 600.0); // the paper's ~400-qubit coax wall
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analog;
pub mod cmos;
pub mod fridge;
pub mod sfq;
pub mod topology;
pub mod units;
pub mod wire;

pub use cmos::{CmosNode, CmosTech, CmosTemp};
pub use fridge::{Fridge, Stage};
pub use sfq::{SfqCell, SfqFamily, SfqStage, SfqTech};
pub use topology::{FridgeTopology, LinkKind};
pub use wire::{InstructionLink, WireKind};
