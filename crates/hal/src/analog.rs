//! Analog front-end power models.
//!
//! The paper does not synthesize analog blocks; it adopts published power
//! numbers (Section 4.1.2): Van Dijk et al. for the drive/TX up-conversion
//! chain, Park et al. for the pulse DAC and RX amplifier/ADC, Kang et al.
//! for the RX LNA and mixer, Cha et al. for the 4 K HEMT, and Ranadive et
//! al. for the mK TWPA. We encode those as per-block constants, calibrated
//! so the full 4 K CMOS QCI reproduces the paper's power breakdown
//! (RX digital 54.7 %, drive digital 13.3 % of the baseline total).

use crate::fridge::Stage;
use crate::units::*;

/// An analog block with a fixed operating power at one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogBlock {
    /// Human-readable block name.
    pub name: &'static str,
    /// Stage where the block dissipates.
    pub stage: Stage,
    /// Power when active, in watts.
    pub active_power_w: f64,
    /// Power when idle (bias kept on), in watts.
    pub idle_power_w: f64,
}

impl AnalogBlock {
    /// Power at a given duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn power_w(&self, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty cycle must be in [0,1]");
        self.idle_power_w + (self.active_power_w - self.idle_power_w) * duty
    }
}

/// Drive-circuit analog chain (I/Q DACs, mixers, PLL share) — one per
/// frequency-multiplexed drive line (Van Dijk et al.).
pub const DRIVE_ANALOG: AnalogBlock = AnalogBlock {
    name: "drive up-conversion chain",
    stage: Stage::K4,
    active_power_w: 16.0 * MILLI_W,
    idle_power_w: 4.0 * MILLI_W,
};

/// TX-circuit analog chain — one per readout TX line.
pub const TX_ANALOG: AnalogBlock = AnalogBlock {
    name: "TX up-conversion chain",
    stage: Stage::K4,
    active_power_w: 1.2 * MILLI_W,
    idle_power_w: 0.3 * MILLI_W,
};

/// RX analog (mixer, IF amplifier, ADC) — one per readout RX line
/// (Park et al. / Kang et al.).
pub const RX_ANALOG: AnalogBlock = AnalogBlock {
    name: "RX down-conversion + ADC",
    stage: Stage::K4,
    active_power_w: 2.4 * MILLI_W,
    idle_power_w: 0.8 * MILLI_W,
};

/// 4 K HEMT low-noise amplifier — one per RX line (Cha et al., 300 µW).
pub const HEMT_LNA: AnalogBlock = AnalogBlock {
    name: "HEMT LNA",
    stage: Stage::K4,
    active_power_w: 300.0 * MICRO_W,
    idle_power_w: 300.0 * MICRO_W,
};

/// Travelling-wave parametric amplifier pump dissipation at 100 mK —
/// one per RX line (Ranadive et al.).
pub const TWPA: AnalogBlock = AnalogBlock {
    name: "TWPA pump",
    stage: Stage::Mk100,
    active_power_w: 10.0 * NANO_W,
    idle_power_w: 10.0 * NANO_W,
};

/// Pulse-circuit analog (baseband DAC + reconstruction filter) — one per
/// qubit (Park et al.).
pub const PULSE_ANALOG: AnalogBlock = AnalogBlock {
    name: "pulse DAC",
    stage: Stage::K4,
    active_power_w: 40.0 * MICRO_W,
    idle_power_w: 10.0 * MICRO_W,
};

/// 300 K arbitrary-waveform-generator channel (14-bit AWG) — rack
/// electronics, dissipates outside the fridge (not budget-constrained but
/// reported for completeness).
pub const AWG_300K_CHANNEL: AnalogBlock = AnalogBlock {
    name: "300K AWG channel",
    stage: Stage::K50,
    active_power_w: 5.0,
    idle_power_w: 1.0,
};

/// Electro-optic modulator driver for photonic links (300 K side).
pub const EOM_DRIVER: AnalogBlock =
    AnalogBlock { name: "EOM driver", stage: Stage::K50, active_power_w: 0.5, idle_power_w: 0.1 };

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_interpolates_between_idle_and_active() {
        let p0 = DRIVE_ANALOG.power_w(0.0);
        let p1 = DRIVE_ANALOG.power_w(1.0);
        let ph = DRIVE_ANALOG.power_w(0.5);
        assert_eq!(p0, DRIVE_ANALOG.idle_power_w);
        assert_eq!(p1, DRIVE_ANALOG.active_power_w);
        assert!((ph - 0.5 * (p0 + p1)).abs() < 1e-15);
    }

    #[test]
    fn hemt_is_always_on() {
        assert_eq!(HEMT_LNA.power_w(0.0), HEMT_LNA.power_w(1.0));
    }

    #[test]
    fn blocks_live_at_expected_stages() {
        assert_eq!(TWPA.stage, Stage::Mk100);
        assert_eq!(HEMT_LNA.stage, Stage::K4);
        assert_eq!(AWG_300K_CHANNEL.stage, Stage::K50);
    }

    #[test]
    fn per_qubit_4k_analog_is_sub_milliwatt() {
        // Baseline 4K CMOS sharing: drive /32, TX /8, RX+HEMT /8, pulse /1.
        let per_qubit = DRIVE_ANALOG.active_power_w / 32.0
            + TX_ANALOG.active_power_w / 8.0
            + (RX_ANALOG.active_power_w + HEMT_LNA.active_power_w) / 8.0
            + PULSE_ANALOG.active_power_w;
        assert!(per_qubit < 1.5 * MILLI_W, "analog/qubit = {per_qubit}");
        assert!(per_qubit > 0.2 * MILLI_W, "analog/qubit = {per_qubit}");
    }

    #[test]
    #[should_panic(expected = "duty cycle must be in")]
    fn bad_duty_panics() {
        let _ = TX_ANALOG.power_w(-0.2);
    }
}
