//! Cryogenic CMOS technology model.
//!
//! This is the Rust stand-in for the paper's CryoModel + Design Compiler
//! flow (Section 4.1): instead of synthesizing Verilog, QIsim-rs describes
//! each circuit as a count of *gate equivalents* (GE) plus SRAM macros, and
//! this module supplies the technology-dependent per-GE / per-access energy
//! and per-GE static power at a given node, temperature, and voltage point.
//!
//! Scaling laws follow the paper's usage:
//!
//! * node scaling per Eq. (2) (`P_dyn ∝ C_g·w·l·V_dd²·f`) with ITRS-derived
//!   per-node factors, anchored at FreePDK 45 nm;
//! * 4 K operation nearly eliminates leakage (the paper applies power
//!   gating on top; we model the combination as a 1e-4 static multiplier);
//! * the "advanced 4K CMOS" of Section 6.4.1 scales 14 nm → 7 nm (4.15×
//!   dynamic-power reduction) and V_dd/V_th (16× reduction), exposed as
//!   [`CmosTech::voltage_scaled`].

use crate::units::*;

/// CMOS process node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosNode {
    /// FreePDK 45 nm — the node CryoModel natively supports.
    N45,
    /// 22 nm — Intel Horse Ridge I/II's node (validation point, Fig. 8).
    N22,
    /// 14 nm — latest node demonstrated at 4 K (near-term baseline).
    N14,
    /// 7 nm — the paper's long-term "advanced 4K CMOS" assumption.
    N7,
}

impl CmosNode {
    /// Dynamic-energy multiplier relative to 45 nm (capacitance × V² with
    /// ITRS-style per-node shrink; 14 nm → 7 nm is the paper's 4.15×).
    pub fn dynamic_scale(self) -> f64 {
        match self {
            CmosNode::N45 => 1.0,
            CmosNode::N22 => 0.42,
            CmosNode::N14 => 0.25,
            CmosNode::N7 => 0.25 / 4.15,
        }
    }

    /// Static-power multiplier relative to 45 nm at equal temperature.
    pub fn static_scale(self) -> f64 {
        match self {
            CmosNode::N45 => 1.0,
            CmosNode::N22 => 0.62,
            CmosNode::N14 => 0.45,
            CmosNode::N7 => 0.31,
        }
    }

    /// Maximum clock at 300 K in Hz (relaxed synthesis targets).
    pub fn max_clock_300k_hz(self) -> f64 {
        match self {
            CmosNode::N45 => 2.0 * GIGA_HZ,
            CmosNode::N22 => 3.0 * GIGA_HZ,
            CmosNode::N14 => 3.5 * GIGA_HZ,
            CmosNode::N7 => 4.0 * GIGA_HZ,
        }
    }
}

/// Operating-temperature point of a CMOS circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmosTemp {
    /// Room temperature.
    Room300K,
    /// Inside the refrigerator's 4 K stage.
    Cryo4K,
}

/// A fully-specified CMOS technology operating point.
///
/// # Examples
///
/// ```
/// use qisim_hal::cmos::{CmosNode, CmosTech, CmosTemp};
///
/// let base = CmosTech::new(CmosNode::N14, CmosTemp::Cryo4K);
/// let adv = base.with_node(CmosNode::N7).with_voltage_scaling();
/// // The paper's combined 4.15 x 16 = 66.4x dynamic-power reduction:
/// let ratio = base.logic_dynamic_energy_j() / adv.logic_dynamic_energy_j();
/// assert!((ratio - 66.4).abs() / 66.4 < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosTech {
    /// Process node.
    pub node: CmosNode,
    /// Operating temperature.
    pub temp: CmosTemp,
    /// Whether the 4 K V_dd/V_th scaling of Section 6.4.1 is applied
    /// (16× dynamic power reduction; only meaningful at 4 K where leakage
    /// is eliminated).
    pub voltage_scaled: bool,
}

/// Base dynamic energy per gate-equivalent switch at 45 nm / 300 K.
const BASE_GE_DYN_J: f64 = 0.5 * FEMTO_J;
/// Base static (leakage) power per gate equivalent at 45 nm / 300 K.
const BASE_GE_STATIC_W: f64 = 6.0 * NANO_W;
/// SRAM read/write energy model at 45 nm / 300 K: `a + b·sqrt(KB)`.
const BASE_SRAM_ACCESS_A_J: f64 = 200.0 * FEMTO_J;
const BASE_SRAM_ACCESS_B_J: f64 = 120.0 * FEMTO_J;
/// SRAM static power per KB at 45 nm / 300 K.
const BASE_SRAM_STATIC_W_PER_KB: f64 = 2.0 * MICRO_W;
/// Residual static fraction at 4 K (near-eliminated leakage + power gating).
const CRYO_STATIC_FACTOR: f64 = 1e-4;
/// Mild dynamic-energy improvement at 4 K (steeper subthreshold slope lets
/// the same frequency close at slightly lower V_dd).
const CRYO_DYNAMIC_FACTOR: f64 = 0.85;
/// V_dd/V_th scaling factor on dynamic power (paper: 16×).
const VOLTAGE_SCALING_FACTOR: f64 = 1.0 / 16.0;
/// Clock uplift from carrier mobility improvement at 4 K.
const CRYO_CLOCK_FACTOR: f64 = 1.2;

impl CmosTech {
    /// Creates a technology point without voltage scaling.
    pub fn new(node: CmosNode, temp: CmosTemp) -> Self {
        CmosTech { node, temp, voltage_scaled: false }
    }

    /// The paper's near-term 4 K CMOS baseline: 14 nm at 4 K.
    pub fn baseline_4k() -> Self {
        CmosTech::new(CmosNode::N14, CmosTemp::Cryo4K)
    }

    /// The 300 K QCI technology point (today's rack electronics, 22 nm).
    pub fn room_300k() -> Self {
        CmosTech::new(CmosNode::N22, CmosTemp::Room300K)
    }

    /// The paper's long-term "advanced 4K CMOS": 7 nm, voltage-scaled.
    pub fn advanced_4k() -> Self {
        CmosTech::new(CmosNode::N7, CmosTemp::Cryo4K).with_voltage_scaling()
    }

    /// Returns the same point on a different node.
    pub fn with_node(mut self, node: CmosNode) -> Self {
        self.node = node;
        self
    }

    /// Enables V_dd/V_th scaling.
    ///
    /// # Panics
    ///
    /// Panics at 300 K — the scaling relies on the leakage elimination that
    /// only cryogenic operation provides (Section 6.4.1).
    pub fn with_voltage_scaling(mut self) -> Self {
        assert!(
            self.temp == CmosTemp::Cryo4K,
            "voltage scaling requires 4K operation (leakage must be eliminated first)"
        );
        self.voltage_scaled = true;
        self
    }

    fn temp_dynamic_factor(&self) -> f64 {
        match self.temp {
            CmosTemp::Room300K => 1.0,
            CmosTemp::Cryo4K => CRYO_DYNAMIC_FACTOR,
        }
    }

    fn temp_static_factor(&self) -> f64 {
        match self.temp {
            CmosTemp::Room300K => 1.0,
            CmosTemp::Cryo4K => CRYO_STATIC_FACTOR,
        }
    }

    fn voltage_factor(&self) -> f64 {
        if self.voltage_scaled {
            VOLTAGE_SCALING_FACTOR
        } else {
            1.0
        }
    }

    /// Dynamic energy per gate-equivalent switching event, in joules.
    pub fn logic_dynamic_energy_j(&self) -> f64 {
        BASE_GE_DYN_J
            * self.node.dynamic_scale()
            * self.temp_dynamic_factor()
            * self.voltage_factor()
    }

    /// Static power per gate equivalent, in watts.
    pub fn logic_static_power_w(&self) -> f64 {
        BASE_GE_STATIC_W * self.node.static_scale() * self.temp_static_factor()
    }

    /// Energy of one SRAM access (read or write) for a macro of `kb`
    /// kilobytes, in joules.
    ///
    /// # Panics
    ///
    /// Panics if `kb` is not positive.
    pub fn sram_access_energy_j(&self, kb: f64) -> f64 {
        assert!(kb > 0.0, "SRAM size must be positive");
        (BASE_SRAM_ACCESS_A_J + BASE_SRAM_ACCESS_B_J * kb.sqrt())
            * self.node.dynamic_scale()
            * self.temp_dynamic_factor()
            * self.voltage_factor()
    }

    /// Static power of an SRAM macro of `kb` kilobytes, in watts.
    pub fn sram_static_power_w(&self, kb: f64) -> f64 {
        assert!(kb > 0.0, "SRAM size must be positive");
        BASE_SRAM_STATIC_W_PER_KB * kb * self.node.static_scale() * self.temp_static_factor()
    }

    /// Maximum clock frequency in Hz.
    pub fn max_clock_hz(&self) -> f64 {
        let base = self.node.max_clock_300k_hz();
        match self.temp {
            CmosTemp::Room300K => base,
            CmosTemp::Cryo4K => base * CRYO_CLOCK_FACTOR,
        }
    }

    /// The clock the synthesized circuit actually runs at: the requested
    /// target, validated against the node's capability (the paper gives the
    /// 2.5 GHz Horse Ridge frequency as the synthesis objective).
    ///
    /// # Panics
    ///
    /// Panics if the node cannot close timing at `target_hz`.
    pub fn achieved_clock_hz(&self, target_hz: f64) -> f64 {
        assert!(
            target_hz <= self.max_clock_hz(),
            "node cannot reach {target_hz} Hz (max {})",
            self.max_clock_hz()
        );
        target_hz
    }

    /// Dynamic power of `ge` gate equivalents clocked at `clock_hz` with
    /// switching activity `activity` (fraction of gates toggling per cycle).
    pub fn logic_dynamic_power_w(&self, ge: f64, clock_hz: f64, activity: f64) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
        ge * self.logic_dynamic_energy_j() * clock_hz * activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_is_monotone() {
        let nodes = [CmosNode::N45, CmosNode::N22, CmosNode::N14, CmosNode::N7];
        for w in nodes.windows(2) {
            assert!(w[0].dynamic_scale() > w[1].dynamic_scale());
            assert!(w[0].static_scale() > w[1].static_scale());
            assert!(w[0].max_clock_300k_hz() < w[1].max_clock_300k_hz());
        }
    }

    #[test]
    fn cryo_kills_leakage() {
        let warm = CmosTech::new(CmosNode::N14, CmosTemp::Room300K);
        let cold = CmosTech::new(CmosNode::N14, CmosTemp::Cryo4K);
        assert!(cold.logic_static_power_w() < 1e-3 * warm.logic_static_power_w());
        assert!(cold.sram_static_power_w(32.0) < 1e-3 * warm.sram_static_power_w(32.0));
    }

    #[test]
    fn paper_advanced_scaling_is_66_4x() {
        let base = CmosTech::baseline_4k();
        let adv = CmosTech::advanced_4k();
        let ratio = base.logic_dynamic_energy_j() / adv.logic_dynamic_energy_j();
        assert!((ratio - 4.15 * 16.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "voltage scaling requires 4K")]
    fn voltage_scaling_at_room_temp_panics() {
        let _ = CmosTech::room_300k().with_voltage_scaling();
    }

    #[test]
    fn horse_ridge_node_meets_2p5ghz() {
        let t = CmosTech::new(CmosNode::N22, CmosTemp::Cryo4K);
        assert_eq!(t.achieved_clock_hz(2.5e9), 2.5e9);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn forty_five_nm_cannot_run_4ghz() {
        let t = CmosTech::new(CmosNode::N45, CmosTemp::Room300K);
        let _ = t.achieved_clock_hz(4.0e9);
    }

    #[test]
    fn sram_energy_grows_with_size() {
        let t = CmosTech::baseline_4k();
        assert!(t.sram_access_energy_j(32.0) > t.sram_access_energy_j(1.0));
        // ~0.2 pJ for the 32 KB bin-counter memory at 14 nm / 4 K.
        let e = t.sram_access_energy_j(32.0);
        assert!(e > 0.1e-12 && e < 0.4e-12, "32KB access energy {e}");
    }

    #[test]
    fn dynamic_power_formula() {
        let t = CmosTech::baseline_4k();
        let p = t.logic_dynamic_power_w(1000.0, 2.5e9, 0.15);
        let expect = 1000.0 * t.logic_dynamic_energy_j() * 2.5e9 * 0.15;
        assert!((p - expect).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn bad_activity_panics() {
        let t = CmosTech::baseline_4k();
        let _ = t.logic_dynamic_power_w(10.0, 1e9, 1.5);
    }
}
