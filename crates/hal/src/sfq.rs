//! Single-flux-quantum (SFQ) superconducting logic model.
//!
//! Stand-in for the paper's XQsim SFQ flow (Yosys + SFQ-specific netlist
//! optimization): circuits are described as cell counts from an
//! MITLL-SFQ5ee-style library (the ColdFlux cell set the paper adopts to
//! keep its artifact open source), and this module supplies per-cell
//! Josephson-junction (JJ) counts and the technology's static/dynamic power:
//!
//! * **RSFQ** — resistively biased: every JJ draws `I_b·V_b` of static
//!   power; switching costs `I_c·Φ₀` per flux quantum.
//! * **ERSFQ** — inductively biased (Kirichenko et al.): zero static power,
//!   slightly higher dynamic overhead from the bias-regulation junctions.
//! * **mK operation** — devices placed at the 20/100 mK stages use the
//!   paper's `0.01·I_c` critical-current scaling, cutting both static and
//!   dynamic power by 100×.
//! * **LJJ transmission lines** — inductance-biased, zero static power
//!   (the key to the Opt-3 shared JPM readout).

use crate::units::*;

/// SFQ logic family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfqFamily {
    /// Conventional resistively-biased rapid SFQ.
    Rsfq,
    /// Energy-efficient RSFQ with inductive biasing (zero static power).
    Ersfq,
}

/// Temperature stage an SFQ circuit is deployed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfqStage {
    /// The 4 K stage (full critical current).
    Cryo4K,
    /// A millikelvin stage (20/100 mK) with `0.01·I_c` scaling.
    MilliKelvin,
}

/// Cells of the MITLL-SFQ5ee-style library with their JJ counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfqCell {
    /// Josephson transmission line segment.
    Jtl,
    /// Splitter (one input, two outputs).
    Splitter,
    /// Confluence buffer / merger.
    Merger,
    /// D flip-flop.
    Dff,
    /// Non-destructive readout cell (storage that survives reads).
    Ndro,
    /// Toggle flip-flop (frequency divider).
    Tff,
    /// AND gate.
    And,
    /// OR gate.
    Or,
    /// XOR gate.
    Xor,
    /// Inverter.
    Not,
    /// 2:1 multiplexer (NDRO-based switch).
    Mux2,
    /// 1:2 demultiplexer.
    Demux2,
    /// SFQ-to-DC converter cell (drives a DC bias from a pulse stream).
    SfqDc,
    /// Long-Josephson-junction transmission-line segment (inductance
    /// biased, zero static power; used by the mK JPM readout).
    LjjSegment,
    /// DC-to-SFQ converter (input interface).
    DcSfq,
}

impl SfqCell {
    /// JJ count of one cell instance (ColdFlux/MITLL-typical values).
    pub fn jj_count(self) -> u32 {
        match self {
            SfqCell::Jtl => 2,
            SfqCell::Splitter => 3,
            SfqCell::Merger => 7,
            SfqCell::Dff => 6,
            SfqCell::Ndro => 11,
            SfqCell::Tff => 8,
            SfqCell::And => 11,
            SfqCell::Or => 9,
            SfqCell::Xor => 11,
            SfqCell::Not => 10,
            SfqCell::Mux2 => 14,
            SfqCell::Demux2 => 12,
            SfqCell::SfqDc => 16,
            SfqCell::LjjSegment => 2,
            SfqCell::DcSfq => 5,
        }
    }

    /// Whether the cell draws static bias power under RSFQ biasing.
    /// LJJ segments are inductance-biased and never do.
    pub fn draws_static_bias(self) -> bool {
        !matches!(self, SfqCell::LjjSegment)
    }
}

/// Critical current of a 4 K junction in amperes (MITLL SFQ5ee typical).
const IC_4K_A: f64 = 100e-6;
/// The paper's mK critical-current scaling (`0.01·I_c`).
const MK_IC_SCALE: f64 = 0.01;
/// Bias current as a fraction of critical current.
const BIAS_FRACTION: f64 = 0.7;
/// Bias-rail voltage of resistively-biased RSFQ in volts.
const BIAS_VOLTAGE_V: f64 = 2.6e-3;
/// ERSFQ dynamic overhead from the bias-regulating junctions.
const ERSFQ_DYNAMIC_OVERHEAD: f64 = 1.4;
/// Nominal SFQ system clock (Table 2).
pub const SFQ_CLOCK_HZ: f64 = 24.0 * GIGA_HZ;
/// Maximum boosted clock for short bursts (Opt-8 fast resonator driving).
pub const SFQ_BOOST_CLOCK_HZ: f64 = 48.0 * GIGA_HZ;

/// A fully-specified SFQ technology operating point.
///
/// # Examples
///
/// ```
/// use qisim_hal::sfq::{SfqFamily, SfqStage, SfqTech};
///
/// let rsfq = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
/// let ersfq = SfqTech::new(SfqFamily::Ersfq, SfqStage::Cryo4K);
/// assert!(rsfq.static_power_per_jj_w() > 0.0);
/// assert_eq!(ersfq.static_power_per_jj_w(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SfqTech {
    /// Logic family.
    pub family: SfqFamily,
    /// Deployment temperature stage.
    pub stage: SfqStage,
}

impl SfqTech {
    /// Creates a technology point.
    pub fn new(family: SfqFamily, stage: SfqStage) -> Self {
        SfqTech { family, stage }
    }

    /// Critical current at this stage.
    pub fn critical_current_a(&self) -> f64 {
        match self.stage {
            SfqStage::Cryo4K => IC_4K_A,
            SfqStage::MilliKelvin => IC_4K_A * MK_IC_SCALE,
        }
    }

    /// Static bias power of one statically-biased JJ, in watts.
    pub fn static_power_per_jj_w(&self) -> f64 {
        match self.family {
            SfqFamily::Rsfq => self.critical_current_a() * BIAS_FRACTION * BIAS_VOLTAGE_V,
            SfqFamily::Ersfq => 0.0,
        }
    }

    /// Switching energy of one JJ per flux quantum, in joules.
    pub fn switching_energy_j(&self) -> f64 {
        let base = self.critical_current_a() * FLUX_QUANTUM_WB;
        match self.family {
            SfqFamily::Rsfq => base,
            SfqFamily::Ersfq => base * ERSFQ_DYNAMIC_OVERHEAD,
        }
    }

    /// Static power of a circuit containing the given cell mix, in watts.
    pub fn static_power_w(&self, cells: &[(SfqCell, u64)]) -> f64 {
        let biased_jj: f64 = cells
            .iter()
            .filter(|(c, _)| c.draws_static_bias())
            .map(|(c, n)| c.jj_count() as f64 * *n as f64)
            .sum();
        biased_jj * self.static_power_per_jj_w()
    }

    /// Dynamic power of a circuit: total JJs × switching activity ×
    /// clock × per-switch energy.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn dynamic_power_w(&self, cells: &[(SfqCell, u64)], clock_hz: f64, activity: f64) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
        let jj: f64 = cells.iter().map(|(c, n)| c.jj_count() as f64 * *n as f64).sum();
        jj * self.switching_energy_j() * clock_hz * activity
    }

    /// Total JJ count of a cell mix.
    pub fn total_jj(cells: &[(SfqCell, u64)]) -> u64 {
        cells.iter().map(|(c, n)| c.jj_count() as u64 * n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsfq_static_per_jj_is_182nw() {
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let p = t.static_power_per_jj_w();
        assert!((p - 182.0e-9).abs() < 1e-9, "per-JJ static {p}");
    }

    #[test]
    fn mk_scaling_cuts_power_100x() {
        let warm = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let cold = SfqTech::new(SfqFamily::Rsfq, SfqStage::MilliKelvin);
        assert!((warm.static_power_per_jj_w() / cold.static_power_per_jj_w() - 100.0).abs() < 1e-9);
        assert!((warm.switching_energy_j() / cold.switching_energy_j() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ersfq_has_zero_static_but_more_dynamic() {
        let rsfq = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let ersfq = SfqTech::new(SfqFamily::Ersfq, SfqStage::Cryo4K);
        assert_eq!(ersfq.static_power_per_jj_w(), 0.0);
        assert!(ersfq.switching_energy_j() > rsfq.switching_energy_j());
    }

    #[test]
    fn ljj_draws_no_static_power() {
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::MilliKelvin);
        let p = t.static_power_w(&[(SfqCell::LjjSegment, 1000)]);
        assert_eq!(p, 0.0);
        // But a DFF chain does.
        let p = t.static_power_w(&[(SfqCell::Dff, 10)]);
        assert!(p > 0.0);
    }

    #[test]
    fn switching_energy_is_attojoule_scale() {
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let e = t.switching_energy_j();
        assert!((e - 2.068e-19).abs() < 1e-21, "E_sw {e}");
    }

    #[test]
    fn cell_mix_accounting() {
        let cells = [(SfqCell::Dff, 4u64), (SfqCell::Splitter, 2), (SfqCell::LjjSegment, 5)];
        assert_eq!(SfqTech::total_jj(&cells), 4 * 6 + 2 * 3 + 5 * 2);
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let s = t.static_power_w(&cells);
        // Only the DFFs and splitters bias.
        let expected = (4.0 * 6.0 + 2.0 * 3.0) * t.static_power_per_jj_w();
        assert!((s - expected).abs() < 1e-15);
    }

    #[test]
    fn dynamic_power_scales_with_clock() {
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let cells = [(SfqCell::Dff, 100u64)];
        let p24 = t.dynamic_power_w(&cells, SFQ_CLOCK_HZ, 0.3);
        let p48 = t.dynamic_power_w(&cells, SFQ_BOOST_CLOCK_HZ, 0.3);
        assert!((p48 / p24 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn bad_activity_panics() {
        let t = SfqTech::new(SfqFamily::Rsfq, SfqStage::Cryo4K);
        let _ = t.dynamic_power_w(&[(SfqCell::Dff, 1)], 1e9, -0.1);
    }
}
