//! Readable SI unit constants and formatting helpers.
//!
//! All powers in this workspace are carried in **watts** and all energies in
//! **joules**; these constants keep the technology tables legible.

/// One milliwatt in watts.
pub const MILLI_W: f64 = 1e-3;
/// One microwatt in watts.
pub const MICRO_W: f64 = 1e-6;
/// One nanowatt in watts.
pub const NANO_W: f64 = 1e-9;
/// One picowatt in watts.
pub const PICO_W: f64 = 1e-12;

/// One picojoule in joules.
pub const PICO_J: f64 = 1e-12;
/// One femtojoule in joules.
pub const FEMTO_J: f64 = 1e-15;
/// One attojoule in joules.
pub const ATTO_J: f64 = 1e-18;

/// One gigahertz in hertz.
pub const GIGA_HZ: f64 = 1e9;
/// One megahertz in hertz.
pub const MEGA_HZ: f64 = 1e6;

/// The magnetic flux quantum Φ₀ in webers — sets the switching energy
/// `E = I_c·Φ₀` of a Josephson junction.
pub const FLUX_QUANTUM_WB: f64 = 2.067_833_848e-15;

/// Formats a power in watts with an adaptive SI prefix.
///
/// # Examples
///
/// ```
/// use qisim_hal::units::format_power;
///
/// assert_eq!(format_power(1.5), "1.500 W");
/// assert_eq!(format_power(2.2523e-3), "2.252 mW");
/// assert_eq!(format_power(128.2e-9), "128.200 nW");
/// ```
pub fn format_power(watts: f64) -> String {
    let a = watts.abs();
    if a >= 1.0 {
        format!("{watts:.3} W")
    } else if a >= MILLI_W {
        format!("{:.3} mW", watts / MILLI_W)
    } else if a >= MICRO_W {
        format!("{:.3} uW", watts / MICRO_W)
    } else if a >= NANO_W {
        format!("{:.3} nW", watts / NANO_W)
    } else {
        format!("{:.3} pW", watts / PICO_W)
    }
}

/// Formats an energy in joules with an adaptive SI prefix.
pub fn format_energy(joules: f64) -> String {
    let a = joules.abs();
    if a >= PICO_J {
        format!("{:.3} pJ", joules / PICO_J)
    } else if a >= FEMTO_J {
        format!("{:.3} fJ", joules / FEMTO_J)
    } else {
        format!("{:.3} aJ", joules / ATTO_J)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_ranges() {
        assert_eq!(format_power(0.5e-6), "500.000 nW");
        assert_eq!(format_power(3.0e-12), "3.000 pW");
        assert_eq!(format_energy(2.5e-13), "250.000 fJ");
        assert_eq!(format_energy(2.07e-19), "0.207 aJ");
    }

    #[test]
    fn flux_quantum_energy_scale() {
        // A 100 uA junction switches with ~0.2 aJ.
        let e = 100e-6 * FLUX_QUANTUM_WB;
        assert!((e - 2.07e-19).abs() < 1e-21);
    }
}
