//! # qisim-power
//!
//! Runtime-power model for the QIsim scalability framework (reproduction
//! of Min et al., *QIsim*, ISCA 2023 — §4.3): aggregates a QCI
//! microarchitecture's device static/dynamic power, analog-cable heat
//! loads, and 300K→4K instruction-link heat per refrigerator stage, and
//! checks the totals against the dilution refrigerator's cooling budgets.
//!
//! # Examples
//!
//! ```
//! use qisim_power::{evaluate, max_qubits};
//! use qisim_microarch::CryoCmosConfig;
//! use qisim_hal::fridge::{Fridge, Stage};
//!
//! let arch = CryoCmosConfig::baseline().build();
//! let fridge = Fridge::standard();
//! let report = evaluate(&arch, &fridge, 1024);
//! assert!(!report.fits()); // the baseline dies before 1,024 qubits...
//! let (max, binding) = max_qubits(&arch, &fridge);
//! assert!(max < 1024);     // ...at the 4 K stage (Fig. 13a)
//! assert_eq!(binding, Some(Stage::K4));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod memo;

pub use memo::{
    cache_len, cache_stats, clear_cache, set_cache_cap, CacheStats, MemoKey, DEFAULT_CACHE_CAP,
};

use qisim_hal::fridge::{Fridge, Stage};
use qisim_hal::wire::InstructionLink;
use qisim_microarch::QciArch;
use qisim_obs::{counter, gauge, span};
use std::fmt;

/// Typed failure of the runtime-power model.
///
/// Library entry points return this through the `try_*` functions; the
/// infallible wrappers ([`evaluate`], [`max_qubits`], …) keep their
/// historical panic behavior for the paper drivers. `qisim`'s
/// `QisimError::Power` variant wraps this error and exposes it through
/// [`std::error::Error::source`], so callers can match on the concrete
/// power failure across the crate boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerError {
    /// A power evaluation was requested at zero qubits. The model's
    /// per-qubit amortizations (shared banks, FDM groups) are undefined
    /// there, and the bisection never probes it.
    NoQubits,
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Exactly the historical `assert!` message, so the
            // infallible wrappers panic with the same text as before.
            PowerError::NoQubits => f.write_str("need at least one qubit"),
        }
    }
}

impl std::error::Error for PowerError {}

/// Power accounting of one refrigerator stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePower {
    /// The stage.
    pub stage: Stage,
    /// Device static power in watts.
    pub device_static_w: f64,
    /// Device dynamic power in watts.
    pub device_dynamic_w: f64,
    /// Analog-cable heat load in watts.
    pub wire_w: f64,
    /// 300K→4K digital instruction-link heat in watts (4 K stage only).
    pub instr_link_w: f64,
    /// Stage cooling budget in watts.
    pub budget_w: f64,
}

impl StagePower {
    /// Total dissipation at the stage.
    pub fn total_w(&self) -> f64 {
        self.device_static_w + self.device_dynamic_w + self.wire_w + self.instr_link_w
    }

    /// Fraction of the stage budget consumed.
    pub fn utilization(&self) -> f64 {
        self.total_w() / self.budget_w
    }

    /// Whether the stage is within budget.
    pub fn fits(&self) -> bool {
        self.total_w() <= self.budget_w
    }
}

/// A full per-stage power report for one design at one qubit count.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Evaluated qubit count.
    pub n_qubits: u64,
    /// Per-stage accounting (warm → cold).
    pub stages: Vec<StagePower>,
}

impl PowerReport {
    /// Whether every stage is within budget.
    pub fn fits(&self) -> bool {
        self.stages.iter().all(StagePower::fits)
    }

    /// The most-loaded stage (by utilization).
    ///
    /// Uses [`f64::total_cmp`], so a degenerate report (a zero-budget
    /// stage yielding a NaN utilization) still returns a stage instead
    /// of panicking mid-pipeline; NaN orders above every finite
    /// utilization and therefore surfaces as the binding stage.
    pub fn binding_stage(&self) -> Option<Stage> {
        self.stages
            .iter()
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            .map(|s| s.stage)
    }

    /// The accounting row for one stage.
    pub fn stage(&self, stage: Stage) -> Option<&StagePower> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

/// Evaluates a design's per-stage power at `n_qubits` using the standard
/// 6 Gb/s instruction link.
///
/// # Panics
///
/// Panics if `n_qubits == 0`; use [`try_evaluate`] for a typed error.
pub fn evaluate(arch: &QciArch, fridge: &Fridge, n_qubits: u64) -> PowerReport {
    evaluate_with_link(arch, fridge, n_qubits, &InstructionLink::standard())
}

/// Fallible [`evaluate`]: zero qubits is a [`PowerError::NoQubits`]
/// diagnostic instead of a process abort.
///
/// # Errors
///
/// Returns [`PowerError::NoQubits`] when `n_qubits == 0`.
pub fn try_evaluate(
    arch: &QciArch,
    fridge: &Fridge,
    n_qubits: u64,
) -> Result<PowerReport, PowerError> {
    try_evaluate_with_link(arch, fridge, n_qubits, &InstructionLink::standard())
}

/// Evaluates with a custom instruction link (future-technology what-ifs).
///
/// # Panics
///
/// Panics if `n_qubits == 0`; use [`try_evaluate_with_link`] for a typed
/// error.
pub fn evaluate_with_link(
    arch: &QciArch,
    fridge: &Fridge,
    n_qubits: u64,
    link: &InstructionLink,
) -> PowerReport {
    // Allowlisted panic (tools/panic_allowlist.txt): the infallible
    // wrapper keeps the historical abort-with-message behavior.
    try_evaluate_with_link(arch, fridge, n_qubits, link).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`evaluate_with_link`].
///
/// # Errors
///
/// Returns [`PowerError::NoQubits`] when `n_qubits == 0`.
pub fn try_evaluate_with_link(
    arch: &QciArch,
    fridge: &Fridge,
    n_qubits: u64,
    link: &InstructionLink,
) -> Result<PowerReport, PowerError> {
    if n_qubits == 0 {
        return Err(PowerError::NoQubits);
    }
    span!("power.evaluate");
    counter!("power.evaluate.calls");
    let stages = Stage::ALL
        .iter()
        .map(|&stage| StagePower {
            stage,
            device_static_w: arch.device_static_w(stage, n_qubits),
            device_dynamic_w: arch.device_dynamic_w(stage, n_qubits),
            wire_w: arch.wire_load_w(stage, n_qubits),
            instr_link_w: if stage == Stage::K4 {
                link.power_4k_w(arch.instr_bandwidth_bps(n_qubits))
            } else {
                0.0
            },
            budget_w: fridge.budget_w(stage),
        })
        .collect();
    Ok(PowerReport { n_qubits, stages })
}

/// [`evaluate_with_link`] through the process-global memo cache
/// ([`memo`]): a repeated probe of the same `(design, qubit count)` —
/// bisections re-run by the experiment suite, sweep grids shared across
/// tests — returns the cached report instead of re-summing the inventory.
///
/// `key` must be `MemoKey::new(arch, fridge, link)` for the same triple;
/// compute it once per design and reuse it across probes (fingerprinting
/// costs more than a single evaluation).
pub fn evaluate_memo(
    key: MemoKey,
    arch: &QciArch,
    fridge: &Fridge,
    n_qubits: u64,
    link: &InstructionLink,
) -> PowerReport {
    // Allowlisted panic (tools/panic_allowlist.txt): infallible wrapper.
    try_evaluate_memo(key, arch, fridge, n_qubits, link).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`evaluate_memo`].
///
/// # Errors
///
/// Returns [`PowerError::NoQubits`] when `n_qubits == 0` (zero-qubit
/// probes are never cached).
pub fn try_evaluate_memo(
    key: MemoKey,
    arch: &QciArch,
    fridge: &Fridge,
    n_qubits: u64,
    link: &InstructionLink,
) -> Result<PowerReport, PowerError> {
    if let Some(report) = memo::lookup(key, n_qubits) {
        return Ok(report);
    }
    let report = try_evaluate_with_link(arch, fridge, n_qubits, link)?;
    memo::store(key, n_qubits, report.clone());
    Ok(report)
}

/// The maximum qubit count the refrigerator can power for this design,
/// and the stage that binds at that scale (§4.3 → Fig. 12/13/17).
///
/// Binary search over qubit count (power is monotone in `n`). Every
/// probe goes through the [`memo`] cache, so re-analyzing a design —
/// the experiment suite does this constantly — replays the whole
/// bisection from cache.
pub fn max_qubits(arch: &QciArch, fridge: &Fridge) -> (u64, Option<Stage>) {
    max_qubits_with_link(arch, fridge, &InstructionLink::standard())
}

/// Fallible [`max_qubits`]. The bisection itself only ever probes
/// `n ≥ 1`, so this currently cannot fail on any constructible input;
/// the `Result` keeps the signature honest as the model grows fallible
/// inputs (custom fridges, link models).
///
/// # Errors
///
/// Propagates any [`PowerError`] raised by a bisection probe.
pub fn try_max_qubits(arch: &QciArch, fridge: &Fridge) -> Result<(u64, Option<Stage>), PowerError> {
    try_max_qubits_with_link(arch, fridge, &InstructionLink::standard())
}

/// [`max_qubits`] with a custom instruction link.
pub fn max_qubits_with_link(
    arch: &QciArch,
    fridge: &Fridge,
    link: &InstructionLink,
) -> (u64, Option<Stage>) {
    // Allowlisted panic (tools/panic_allowlist.txt): infallible wrapper.
    try_max_qubits_with_link(arch, fridge, link).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`max_qubits_with_link`].
///
/// # Errors
///
/// Propagates any [`PowerError`] raised by a bisection probe.
pub fn try_max_qubits_with_link(
    arch: &QciArch,
    fridge: &Fridge,
    link: &InstructionLink,
) -> Result<(u64, Option<Stage>), PowerError> {
    span!("power.max_qubits");
    let key = MemoKey::new(arch, fridge, link);
    let probe = |n: u64| try_evaluate_memo(key, arch, fridge, n, link);
    if !probe(1)?.fits() {
        return Ok((0, probe(1)?.binding_stage()));
    }
    let mut lo = 1u64; // fits
    let mut hi = 2u64;
    while probe(hi)?.fits() {
        counter!("power.bisection.iters");
        if qisim_obs::trace::armed() {
            qisim_obs::trace::instant("power.bisection.probe", &[("qubits", hi as f64)]);
        }
        lo = hi;
        hi *= 2;
        if hi > 1 << 40 {
            return Ok((lo, None)); // effectively unbounded by power
        }
    }
    while hi - lo > 1 {
        counter!("power.bisection.iters");
        let mid = lo + (hi - lo) / 2;
        if qisim_obs::trace::armed() {
            qisim_obs::trace::instant("power.bisection.probe", &[("qubits", mid as f64)]);
        }
        if probe(mid)?.fits() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let binding = probe(hi)?.binding_stage();
    record_stage_gauges(&probe(lo.max(1))?);
    Ok((lo, binding))
}

/// Publishes per-stage watt attribution and utilization gauges for a
/// report (called at the bisection's landing point, so the gauges show
/// where every watt goes at the design's maximum scale).
fn record_stage_gauges(report: &PowerReport) {
    if !qisim_obs::enabled() {
        return;
    }
    for s in &report.stages {
        let label = s.stage.label();
        gauge!(format!("power.stage.{label}.device_static_w"), s.device_static_w);
        gauge!(format!("power.stage.{label}.device_dynamic_w"), s.device_dynamic_w);
        gauge!(format!("power.stage.{label}.wire_w"), s.wire_w);
        gauge!(format!("power.stage.{label}.instr_link_w"), s.instr_link_w);
        gauge!(format!("power.stage.{label}.total_w"), s.total_w());
        gauge!(format!("power.stage.{label}.budget_w"), s.budget_w);
        gauge!(format!("power.stage.{label}.utilization"), s.utilization());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_microarch::{CryoCmosConfig, DecisionKind, RoomInterconnect, SfqConfig};

    #[test]
    fn report_structure() {
        let arch = CryoCmosConfig::baseline().build();
        let r = evaluate(&arch, &Fridge::standard(), 128);
        assert_eq!(r.stages.len(), 5);
        assert!(r.stage(Stage::K4).unwrap().device_dynamic_w > 0.0);
        assert_eq!(r.stage(Stage::Mk20).unwrap().instr_link_w, 0.0);
        assert!(r.stage(Stage::K4).unwrap().instr_link_w > 0.0);
    }

    #[test]
    fn cmos_baseline_binds_at_4k_near_700() {
        // Fig. 13a: "the 4K CMOS QCI cannot support more than 700 qubits".
        let arch = CryoCmosConfig::baseline().build();
        let (max, binding) = max_qubits(&arch, &Fridge::standard());
        assert!(max > 450 && max < 900, "baseline 4K CMOS max {max}");
        assert_eq!(binding, Some(Stage::K4));
    }

    #[test]
    fn opt1_opt2_reach_the_near_term_scale() {
        // Fig. 13a: Opt-1 + Opt-2 lift the design to 1,399 qubits.
        let cfg = CryoCmosConfig {
            decision: DecisionKind::Memoryless,
            drive_bits: 6,
            ..CryoCmosConfig::baseline()
        };
        let (max, _) = max_qubits(&cfg.build(), &Fridge::standard());
        assert!(max >= 1152, "optimized 4K CMOS max {max}");
        assert!(max < 2200, "optimized 4K CMOS max {max}");
    }

    #[test]
    fn room_temperature_designs_bind_at_mk_stages() {
        for (kind, lo, hi, stage) in [
            (RoomInterconnect::Coax, 250u64, 550u64, Stage::Mk100),
            (RoomInterconnect::Microstrip, 500, 900, Stage::Mk100),
            (RoomInterconnect::Photonic, 30, 120, Stage::Mk20),
        ] {
            let arch = qisim_microarch::room_cmos::build(kind);
            let (max, binding) = max_qubits(&arch, &Fridge::standard());
            assert!(max >= lo && max <= hi, "{kind:?}: max {max}");
            assert_eq!(binding, Some(stage), "{kind:?}");
        }
    }

    #[test]
    fn rsfq_baseline_binds_at_mk20_near_160() {
        let arch = SfqConfig::baseline_rsfq().build();
        let (max, binding) = max_qubits(&arch, &Fridge::standard());
        assert!(max > 100 && max < 230, "RSFQ baseline max {max}");
        assert_eq!(binding, Some(Stage::Mk20));
    }

    #[test]
    fn optimized_rsfq_reaches_1248_scale() {
        let arch = SfqConfig::near_term_optimized().build();
        let (max, _) = max_qubits(&arch, &Fridge::standard());
        assert!(max > 1000 && max < 1600, "optimized RSFQ max {max}");
    }

    #[test]
    fn ersfq_supports_the_long_term_scale() {
        let arch = SfqConfig::long_term_ersfq().build();
        let (max, _) = max_qubits(&arch, &Fridge::standard());
        assert!(max > 62_208, "ERSFQ max {max}");
    }

    #[test]
    fn bigger_budget_means_more_qubits() {
        let arch = CryoCmosConfig::baseline().build();
        let std = max_qubits(&arch, &Fridge::standard()).0;
        let big = max_qubits(&arch, &Fridge::standard().with_budget(Stage::K4, 3.0)).0;
        assert!(big as f64 > 1.8 * std as f64, "std {std} big {big}");
    }

    #[test]
    fn memoized_probes_match_direct_evaluation() {
        let arch = CryoCmosConfig::baseline().build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        let key = MemoKey::new(&arch, &fridge, &link);
        for n in [1u64, 97, 1024, 4096] {
            let direct = evaluate_with_link(&arch, &fridge, n, &link);
            // First call fills the cache, second replays it; both must
            // equal the uncached computation bit for bit.
            assert_eq!(evaluate_memo(key, &arch, &fridge, n, &link), direct);
            assert_eq!(evaluate_memo(key, &arch, &fridge, n, &link), direct);
        }
    }

    #[test]
    fn repeated_bisections_replay_from_cache() {
        let arch = SfqConfig::baseline_rsfq().build();
        let fridge = Fridge::standard();
        let cold = max_qubits(&arch, &fridge);
        let warm = max_qubits(&arch, &fridge);
        assert_eq!(cold, warm);
        assert!(cache_len() > 0, "bisection probes must populate the cache");
    }

    #[test]
    fn zero_qubits_is_a_typed_error() {
        let arch = CryoCmosConfig::baseline().build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        let err = try_evaluate(&arch, &fridge, 0).unwrap_err();
        assert_eq!(err, PowerError::NoQubits);
        assert_eq!(err.to_string(), "need at least one qubit");
        let key = MemoKey::new(&arch, &fridge, &link);
        assert_eq!(try_evaluate_memo(key, &arch, &fridge, 0, &link), Err(PowerError::NoQubits));
    }

    #[test]
    fn try_paths_match_infallible_paths() {
        let arch = SfqConfig::baseline_rsfq().build();
        let fridge = Fridge::standard();
        assert_eq!(try_evaluate(&arch, &fridge, 512).unwrap(), evaluate(&arch, &fridge, 512));
        assert_eq!(try_max_qubits(&arch, &fridge).unwrap(), max_qubits(&arch, &fridge));
    }

    #[test]
    fn binding_stage_survives_nan_utilization() {
        // A zero-budget stage makes utilization NaN when its total is
        // also zero; `total_cmp` ranks NaN above every finite value, so
        // the degenerate stage is reported instead of panicking.
        let nan_stage = StagePower {
            stage: Stage::Mk20,
            device_static_w: 0.0,
            device_dynamic_w: 0.0,
            wire_w: 0.0,
            instr_link_w: 0.0,
            budget_w: 0.0,
        };
        let fine_stage = StagePower { budget_w: 1.5, device_static_w: 1.0, ..nan_stage };
        let report = PowerReport {
            n_qubits: 1,
            stages: vec![StagePower { stage: Stage::K4, ..fine_stage }, nan_stage],
        };
        assert!(report.stages[1].utilization().is_nan());
        assert_eq!(report.binding_stage(), Some(Stage::Mk20));
    }

    #[test]
    fn utilization_is_monotone_in_qubits() {
        let arch = CryoCmosConfig::baseline().build();
        let f = Fridge::standard();
        let u1 = evaluate(&arch, &f, 100).stage(Stage::K4).unwrap().utilization();
        let u2 = evaluate(&arch, &f, 200).stage(Stage::K4).unwrap().utilization();
        assert!(u2 > u1);
    }
}
