//! Power-evaluation memoization.
//!
//! The scalability engine evaluates the same `(architecture, fridge,
//! instruction link)` triple at many qubit counts — ~40 bisection probes
//! per `max_qubits`, one evaluation per sweep point — and the experiment
//! suite re-analyzes the same handful of designs over and over. Stage
//! powers are pure functions of that triple plus the qubit count, so a
//! process-global memo cache turns every repeat into a lookup.
//!
//! The cache key is a [`MemoKey`] fingerprint: a 128-bit FNV-1a hash over
//! the `Debug` rendering of the triple. All three types are plain data
//! and `f64` Debug formatting is shortest-round-trip, so equal physics
//! renders to equal text; 128 bits make an accidental collision between
//! the handful of designs a process touches vanishingly unlikely.
//! Fingerprinting walks the whole architecture (~dozens of components),
//! which costs more than a single stage-power evaluation — callers
//! compute the key **once per design** and reuse it across every probe
//! ([`crate::max_qubits`] and `scalability::sweep` do exactly that).
//!
//! # Bounded LRU
//!
//! The cache is a strict least-recently-used cache bounded at
//! [`DEFAULT_CACHE_CAP`] entries (override with `QISIM_MEMO_CAP`, read
//! once per process, or at runtime with [`set_cache_cap`]): a long-lived
//! service sweeping thousands of designs evicts cold entries one at a
//! time instead of growing without bound or dropping the whole working
//! set. Recency is an intrusive doubly-linked list threaded through a
//! slot arena, so every hit and insert is O(1) and eviction never
//! reallocates. Caching is transparent — stage powers are pure functions
//! of the key — so any capacity yields bit-identical reports.
//!
//! Health is published through `qisim-obs`: `power.cache.{hits,misses,
//! evictions}` counters and `power.cache.{len,bytes_est}` gauges feed the
//! telemetry exporter, and [`cache_stats`] returns the same numbers
//! directly (independent of whether observability is compiled in).

use crate::PowerReport;
use qisim_hal::fridge::Fridge;
use qisim_hal::wire::InstructionLink;
use qisim_microarch::QciArch;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Default entry capacity: generous enough that every in-tree workload
/// (bisections, paper sweeps, the experiment suite) fits without a
/// single eviction; `QISIM_MEMO_CAP` / [`set_cache_cap`] override it.
pub const DEFAULT_CACHE_CAP: usize = 1 << 15;

/// Fingerprint of one `(architecture, fridge, instruction-link)` triple;
/// the per-design half of the memo-cache key (the other half is the
/// qubit count). Compute it once per design and reuse it for every
/// [`crate::evaluate_memo`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    lo: u64,
    hi: u64,
}

impl MemoKey {
    /// Fingerprints the triple (see the module docs for why hashing the
    /// `Debug` rendering is sound here).
    pub fn new(arch: &QciArch, fridge: &Fridge, link: &InstructionLink) -> Self {
        let text = format!("{arch:?}\u{1f}{fridge:?}\u{1f}{link:?}");
        MemoKey {
            lo: fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325),
            hi: fnv1a(text.as_bytes(), 0x6c62_272e_07bb_0142),
        }
    }
}

/// FNV-1a over `bytes` from the given offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A point-in-time view of the memo cache's health (the same numbers the
/// `power.cache.*` metrics publish, available without `qisim-obs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache (process lifetime).
    pub hits: u64,
    /// Lookups that fell through to a fresh evaluation.
    pub misses: u64,
    /// Entries displaced because the cache was at capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Estimated resident bytes (slots plus per-report stage payload).
    pub bytes_est: usize,
    /// Current entry capacity.
    pub cap: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`, or NaN before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

const NIL: usize = usize::MAX;

/// One arena slot: the entry plus its intrusive recency links.
#[derive(Debug)]
struct Slot {
    key: (MemoKey, u64),
    report: PowerReport,
    /// Toward more-recent (NIL at the head).
    prev: usize,
    /// Toward less-recent (NIL at the tail).
    next: usize,
}

/// The LRU core: a `HashMap` from key to arena index, a slot arena with
/// an intrusive doubly-linked recency list (head = most recent, tail =
/// next to evict), and a free list so eviction recycles slots without
/// reallocating.
#[derive(Debug)]
struct LruCache {
    map: HashMap<(MemoKey, u64), usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    bytes_est: usize,
}

/// Estimated resident cost of one entry: its slot (key, report header,
/// links) plus the report's heap-allocated stage rows.
fn entry_bytes(report: &PowerReport) -> usize {
    std::mem::size_of::<Slot>() + report.stages.len() * std::mem::size_of::<crate::StagePower>()
}

impl LruCache {
    fn new(cap: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap: cap.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes_est: 0,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Looks up an entry, marking it most-recently-used on a hit.
    fn get(&mut self, key: (MemoKey, u64)) -> Option<PowerReport> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(self.slots[i].report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one first when at capacity.
    fn insert(&mut self, key: (MemoKey, u64), report: PowerReport) {
        if let Some(&i) = self.map.get(&key) {
            self.bytes_est =
                self.bytes_est + entry_bytes(&report) - entry_bytes(&self.slots[i].report);
            self.slots[i].report = report;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        while self.map.len() >= self.cap {
            self.evict_tail();
        }
        self.bytes_est += entry_bytes(&report);
        let slot = Slot { key, report, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn evict_tail(&mut self) {
        let i = self.tail;
        if i == NIL {
            return;
        }
        self.unlink(i);
        self.map.remove(&self.slots[i].key);
        self.bytes_est = self.bytes_est.saturating_sub(entry_bytes(&self.slots[i].report));
        self.free.push(i);
        self.evictions += 1;
    }

    /// Shrinks (or grows) the capacity, evicting down to it immediately.
    fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.map.len() > self.cap {
            self.evict_tail();
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes_est = 0;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            bytes_est: self.bytes_est,
            cap: self.cap,
        }
    }
}

/// `QISIM_MEMO_CAP` captured at first use; invalid or unset falls back
/// to [`DEFAULT_CACHE_CAP`].
fn env_cap() -> usize {
    static ENV_CAP: OnceLock<usize> = OnceLock::new();
    *ENV_CAP.get_or_init(|| {
        std::env::var("QISIM_MEMO_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_CACHE_CAP, |cap| cap.max(1))
    })
}

fn cache() -> &'static Mutex<LruCache> {
    static CACHE: OnceLock<Mutex<LruCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(LruCache::new(env_cap())))
}

fn locked() -> std::sync::MutexGuard<'static, LruCache> {
    cache().lock().unwrap_or_else(|e| e.into_inner())
}

/// Publishes the size gauges after a mutation (the hit/miss/eviction
/// counters are emitted at their call sites so the deltas trace).
fn publish_size(lru: &LruCache) {
    qisim_obs::gauge!("power.cache.len", lru.map.len() as f64);
    qisim_obs::gauge!("power.cache.bytes_est", lru.bytes_est as f64);
}

/// A cached report, if this `(design, qubit count)` was evaluated before.
/// A hit marks the entry most-recently-used.
pub(crate) fn lookup(key: MemoKey, n_qubits: u64) -> Option<PowerReport> {
    let hit = locked().get((key, n_qubits));
    match hit {
        Some(r) => {
            qisim_obs::counter!("power.cache.hits");
            Some(r)
        }
        None => {
            qisim_obs::counter!("power.cache.misses");
            None
        }
    }
}

/// Stores a freshly computed report, evicting the least-recently-used
/// entry when the cache is at capacity.
pub(crate) fn store(key: MemoKey, n_qubits: u64, report: PowerReport) {
    let mut lru = locked();
    let evicted_before = lru.evictions;
    lru.insert((key, n_qubits), report);
    let evicted = lru.evictions - evicted_before;
    publish_size(&lru);
    drop(lru);
    if evicted > 0 {
        qisim_obs::counter!("power.cache.evictions", evicted);
    }
}

/// Empties the memo cache (benches use this to time cold runs fairly)
/// and zeroes the `power.cache.{len,bytes_est}` gauges it invalidates;
/// the lifetime hit/miss/eviction counters are preserved.
pub fn clear_cache() {
    let mut lru = locked();
    lru.clear();
    publish_size(&lru);
}

/// Number of `(design, qubit count)` reports currently cached.
pub fn cache_len() -> usize {
    locked().map.len()
}

/// The cache's lifetime hit/miss/eviction counts and current size — the
/// numbers behind the `power.cache.*` metrics, available even when
/// observability is compiled out.
pub fn cache_stats() -> CacheStats {
    locked().stats()
}

/// Overrides the entry capacity at runtime: `Some(cap)` bounds the cache
/// (evicting down immediately), `None` restores the `QISIM_MEMO_CAP` /
/// [`DEFAULT_CACHE_CAP`] value. Tests use this instead of the
/// read-once environment variable; capacity never affects results, only
/// how much is re-evaluated.
pub fn set_cache_cap(cap: Option<usize>) {
    let mut lru = locked();
    let evicted_before = lru.evictions;
    lru.set_cap(cap.unwrap_or_else(env_cap));
    let evicted = lru.evictions - evicted_before;
    publish_size(&lru);
    drop(lru);
    if evicted > 0 {
        qisim_obs::counter!("power.cache.evictions", evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_microarch::CryoCmosConfig;

    #[test]
    fn equal_physics_equal_key_different_physics_different_key() {
        let a = CryoCmosConfig::baseline().build();
        let b = CryoCmosConfig::baseline().build();
        let c = CryoCmosConfig { drive_bits: 6, ..CryoCmosConfig::baseline() }.build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        assert_eq!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&b, &fridge, &link));
        assert_ne!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&c, &fridge, &link));
        // The fridge and link are part of the key too.
        let big = Fridge::standard().with_budget(qisim_hal::fridge::Stage::K4, 9.0);
        assert_ne!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&a, &big, &link));
    }

    #[test]
    fn store_lookup_roundtrip_and_clear() {
        let arch = CryoCmosConfig::baseline().build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        let key = MemoKey::new(&arch, &fridge, &link);
        // A distinctive qubit count no other test is likely to probe.
        let n = 987_654_321;
        clear_cache();
        assert_eq!(lookup(key, n), None);
        let report = crate::evaluate_with_link(&arch, &fridge, n, &link);
        store(key, n, report.clone());
        assert_eq!(lookup(key, n), Some(report));
        assert!(cache_len() >= 1);
        clear_cache();
        assert_eq!(cache_len(), 0);
        assert_eq!(cache_stats().bytes_est, 0, "clear resets the size estimates");
    }

    // The LRU core is unit-tested on a local instance: the global cache
    // is shared by concurrently running tests, so eviction-order
    // assertions would race there.

    fn key(i: u64) -> (MemoKey, u64) {
        (MemoKey { lo: i, hi: !i }, i)
    }

    fn report(n: u64) -> PowerReport {
        PowerReport { n_qubits: n, stages: Vec::new() }
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut lru = LruCache::new(3);
        for i in 0..3 {
            lru.insert(key(i), report(i));
        }
        // Touch 0: it becomes most-recent, so 1 is now the coldest.
        assert!(lru.get(key(0)).is_some());
        lru.insert(key(3), report(3));
        assert_eq!(lru.map.len(), 3);
        assert!(lru.get(key(1)).is_none(), "coldest entry evicted");
        assert!(lru.get(key(0)).is_some(), "recently touched entry kept");
        assert!(lru.get(key(2)).is_some());
        assert!(lru.get(key(3)).is_some());
        assert_eq!(lru.evictions, 1);
    }

    #[test]
    fn lru_recycles_slots_and_tracks_bytes() {
        let mut lru = LruCache::new(2);
        for i in 0..10 {
            lru.insert(key(i), report(i));
        }
        assert_eq!(lru.map.len(), 2);
        assert_eq!(lru.slots.len(), 2, "evicted slots are recycled, not leaked");
        assert_eq!(lru.evictions, 8);
        assert_eq!(lru.bytes_est, 2 * std::mem::size_of::<Slot>());
        // Refreshing an existing key neither grows nor evicts.
        lru.insert(key(9), report(99));
        assert_eq!(lru.map.len(), 2);
        assert_eq!(lru.evictions, 8);
        assert_eq!(lru.get(key(9)).unwrap().n_qubits, 99);
    }

    #[test]
    fn lru_shrinking_cap_evicts_down_immediately() {
        let mut lru = LruCache::new(8);
        for i in 0..8 {
            lru.insert(key(i), report(i));
        }
        lru.set_cap(2);
        assert_eq!(lru.map.len(), 2);
        assert_eq!(lru.evictions, 6);
        // The two most recent survive.
        assert!(lru.get(key(6)).is_some());
        assert!(lru.get(key(7)).is_some());
        // Degenerate caps clamp to one entry.
        lru.set_cap(0);
        assert_eq!(lru.cap, 1);
        assert_eq!(lru.map.len(), 1);
    }

    #[test]
    fn lru_stats_reflect_activity() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1), report(1));
        assert!(lru.get(key(1)).is_some());
        assert!(lru.get(key(2)).is_none());
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len, s.cap), (1, 1, 0, 1, 2));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!(s.bytes_est > 0);
    }

    #[test]
    fn bounded_cache_returns_bit_identical_reports() {
        // Thrash a capacity-2 cache across 50 distinct points: every
        // report must equal the direct evaluation bit for bit, hit or
        // miss or evicted-and-recomputed.
        let arch = CryoCmosConfig::baseline().build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        let key = MemoKey::new(&arch, &fridge, &link);
        let mut lru = LruCache::new(2);
        for round in 0..2 {
            for n in (1..=50u64).map(|i| i * 37) {
                let direct = crate::evaluate_with_link(&arch, &fridge, n, &link);
                let cached = match lru.get((key, n)) {
                    Some(r) => r,
                    None => {
                        lru.insert((key, n), direct.clone());
                        direct.clone()
                    }
                };
                assert_eq!(cached, direct, "round {round}, n {n}");
            }
        }
        assert!(lru.evictions > 0, "a capacity-2 cache must have evicted");
        assert_eq!(lru.map.len(), 2);
    }
}
