//! Power-evaluation memoization.
//!
//! The scalability engine evaluates the same `(architecture, fridge,
//! instruction link)` triple at many qubit counts — ~40 bisection probes
//! per `max_qubits`, one evaluation per sweep point — and the experiment
//! suite re-analyzes the same handful of designs over and over. Stage
//! powers are pure functions of that triple plus the qubit count, so a
//! process-global memo cache turns every repeat into a lookup.
//!
//! The cache key is a [`MemoKey`] fingerprint: a 128-bit FNV-1a hash over
//! the `Debug` rendering of the triple. All three types are plain data
//! and `f64` Debug formatting is shortest-round-trip, so equal physics
//! renders to equal text; 128 bits make an accidental collision between
//! the handful of designs a process touches vanishingly unlikely.
//! Fingerprinting walks the whole architecture (~dozens of components),
//! which costs more than a single stage-power evaluation — callers
//! compute the key **once per design** and reuse it across every probe
//! ([`crate::max_qubits`] and `scalability::sweep` do exactly that).
//!
//! Cache pressure is bounded: at [`CACHE_CAP`] entries the map is cleared
//! (sweeps re-warm it in one pass). Hits, misses, and size are published
//! as `power.cache.*` metrics through `qisim-obs`.

use crate::PowerReport;
use qisim_hal::fridge::Fridge;
use qisim_hal::wire::InstructionLink;
use qisim_microarch::QciArch;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Entries kept before the cache is wiped and re-warmed.
pub const CACHE_CAP: usize = 1 << 15;

/// Fingerprint of one `(architecture, fridge, instruction-link)` triple;
/// the per-design half of the memo-cache key (the other half is the
/// qubit count). Compute it once per design and reuse it for every
/// [`crate::evaluate_memo`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    lo: u64,
    hi: u64,
}

impl MemoKey {
    /// Fingerprints the triple (see the module docs for why hashing the
    /// `Debug` rendering is sound here).
    pub fn new(arch: &QciArch, fridge: &Fridge, link: &InstructionLink) -> Self {
        let text = format!("{arch:?}\u{1f}{fridge:?}\u{1f}{link:?}");
        MemoKey {
            lo: fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325),
            hi: fnv1a(text.as_bytes(), 0x6c62_272e_07bb_0142),
        }
    }
}

/// FNV-1a over `bytes` from the given offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn cache() -> &'static Mutex<HashMap<(MemoKey, u64), PowerReport>> {
    static CACHE: OnceLock<Mutex<HashMap<(MemoKey, u64), PowerReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A cached report, if this `(design, qubit count)` was evaluated before.
pub(crate) fn lookup(key: MemoKey, n_qubits: u64) -> Option<PowerReport> {
    let hit = cache().lock().unwrap_or_else(|e| e.into_inner()).get(&(key, n_qubits)).cloned();
    match hit {
        Some(r) => {
            qisim_obs::counter!("power.cache.hits");
            Some(r)
        }
        None => {
            qisim_obs::counter!("power.cache.misses");
            None
        }
    }
}

/// Stores a freshly computed report, wiping the map at [`CACHE_CAP`].
pub(crate) fn store(key: MemoKey, n_qubits: u64, report: PowerReport) {
    let mut map = cache().lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert((key, n_qubits), report);
    qisim_obs::gauge!("power.cache.size", map.len() as f64);
}

/// Empties the memo cache (benches use this to time cold runs fairly).
pub fn clear_cache() {
    cache().lock().unwrap_or_else(|e| e.into_inner()).clear();
    qisim_obs::gauge!("power.cache.size", 0.0);
}

/// Number of `(design, qubit count)` reports currently cached.
pub fn cache_len() -> usize {
    cache().lock().unwrap_or_else(|e| e.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qisim_microarch::CryoCmosConfig;

    #[test]
    fn equal_physics_equal_key_different_physics_different_key() {
        let a = CryoCmosConfig::baseline().build();
        let b = CryoCmosConfig::baseline().build();
        let c = CryoCmosConfig { drive_bits: 6, ..CryoCmosConfig::baseline() }.build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        assert_eq!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&b, &fridge, &link));
        assert_ne!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&c, &fridge, &link));
        // The fridge and link are part of the key too.
        let big = Fridge::standard().with_budget(qisim_hal::fridge::Stage::K4, 9.0);
        assert_ne!(MemoKey::new(&a, &fridge, &link), MemoKey::new(&a, &big, &link));
    }

    #[test]
    fn store_lookup_roundtrip_and_clear() {
        let arch = CryoCmosConfig::baseline().build();
        let fridge = Fridge::standard();
        let link = InstructionLink::standard();
        let key = MemoKey::new(&arch, &fridge, &link);
        // A distinctive qubit count no other test is likely to probe.
        let n = 987_654_321;
        clear_cache();
        assert_eq!(lookup(key, n), None);
        let report = crate::evaluate_with_link(&arch, &fridge, n, &link);
        store(key, n, report.clone());
        assert_eq!(lookup(key, n), Some(report));
        assert!(cache_len() >= 1);
        clear_cache();
        assert_eq!(cache_len(), 0);
    }
}
